// End-to-end controller tests: migration under S-heavy traffic on a
// live server, the X-Effective-Mapping redirect header, the bound
// monitor staying clean across the switch, and the persisted decision
// surviving a warm restart without re-materialization.
package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/mapstore"
	"repro/internal/testutil"
)

// controllerTestConfig parks the wall-clock loop (ticks are driven
// synchronously) and opens every policy gate the traffic can earn.
func controllerTestConfig() Config {
	return Config{
		Workers:              2,
		Controller:           true,
		ControllerInterval:   time.Hour,
		ControllerMinDwell:   time.Millisecond,
		ControllerMinSamples: 4,
		ShadowSampleRate:     1,
	}
}

// benchSpec is the phase-shift scenario's requested mapping: levelcyclic
// over the m=4 canonical module count, so COLOR is a candidate.
func controllerRequestedSpec() MappingSpec {
	return MappingSpec{Alg: "levelcyclic", Levels: 12, Modules: 15}
}

// postSubtrees posts n instance-mode S(7) template costs — the traffic
// shape levelcyclic loses on (3 conflicts each) and COLOR serves free.
func postSubtrees(t *testing.T, ts *httptest.Server, spec MappingSpec, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		var resp TemplateCostResponse
		req := TemplateCostRequest{
			Mapping: spec, Kind: "S", Size: 7,
			Anchor: &NodeRef{Index: int64(i % 8), Level: 3},
		}
		if status := post(t, ts.Client(), ts.URL+"/v1/template-cost", req, &resp); status != 200 {
			t.Fatalf("subtree request %d: status %d", i, status)
		}
	}
}

func TestControllerMigratesUnderSHeavyTraffic(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	srv := New(controllerTestConfig())
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		shutdownServer(t, srv)
	}()

	spec := controllerRequestedSpec()
	postSubtrees(t, ts, spec, 24)

	if n := srv.ControllerTick(time.Now()); n != 1 {
		t.Fatalf("tick migrated %d entries, want 1", n)
	}
	wantEffective := MappingSpec{Alg: "color", Levels: 12, M: 4}
	if got := srv.reg.Resolve(spec); got != wantEffective {
		t.Fatalf("Resolve(%s) = %s, want %s", spec.Key(), got.Key(), wantEffective.Key())
	}

	// Subsequent requests carry the redirect header and keep the bound
	// monitor clean: COLOR serves S(7) conflict-free (Theorem 3), and the
	// checks now run against the effective spec, not the requested one.
	var resp TemplateCostResponse
	for i := 0; i < 8; i++ {
		r := TemplateCostRequest{Mapping: spec, Kind: "S", Size: 7,
			Anchor: &NodeRef{Index: int64(i), Level: 3}}
		body, hdr := postWithHeader(t, ts, "/v1/template-cost", r, &resp)
		if body != 200 {
			t.Fatalf("post-migration request: status %d", body)
		}
		if hdr != wantEffective.Key() {
			t.Fatalf("%s = %q, want %q", EffectiveMappingHeader, hdr, wantEffective.Key())
		}
		if resp.Conflicts != 0 {
			t.Errorf("S(7) under COLOR cost %d conflicts, want 0", resp.Conflicts)
		}
	}

	snap := srv.Metrics().Snapshot()
	if snap.ControllerMigrations != 1 {
		t.Errorf("controller_migrations = %d, want 1", snap.ControllerMigrations)
	}
	if snap.ControllerDecisions < 1 || snap.ControllerShadowEvals < 2 {
		t.Errorf("decisions %d / shadow evals %d — controller did not score",
			snap.ControllerDecisions, snap.ControllerShadowEvals)
	}
	if snap.Domain == nil || snap.Domain.BoundViolations != 0 {
		t.Errorf("bound violations across migration: %+v", snap.Domain)
	}
	if snap.Controller == nil || len(snap.Controller.Entries) == 0 {
		t.Fatalf("controller snapshot missing: %+v", snap.Controller)
	}
	e := snap.Controller.Entries[0]
	if e.Effective != wantEffective.Key() || e.LastAction != "migrate" {
		t.Errorf("controller entry = %+v", e)
	}
}

// TestControllerNoFlipFlapAcrossTicks re-ticks the migrated entry under
// continuing traffic: once on COLOR (zero replayed conflicts) no score
// can beat it, so the entry must never flap back.
func TestControllerNoFlipFlapAcrossTicks(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	srv := New(controllerTestConfig())
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		shutdownServer(t, srv)
	}()

	spec := controllerRequestedSpec()
	postSubtrees(t, ts, spec, 16)
	now := time.Now()
	if n := srv.ControllerTick(now); n != 1 {
		t.Fatalf("first tick migrated %d, want 1", n)
	}
	for i := 0; i < 5; i++ {
		postSubtrees(t, ts, spec, 8)
		now = now.Add(time.Second) // dwell (1ms) long expired every tick
		if n := srv.ControllerTick(now); n != 0 {
			t.Fatalf("tick %d flip-flapped the entry", i)
		}
	}
	if got := srv.Metrics().Snapshot().ControllerMigrations; got != 1 {
		t.Errorf("controller_migrations = %d after re-ticks, want 1", got)
	}
}

// postWithHeader posts like post() but also returns the response's
// effective-mapping redirect header.
func postWithHeader(t *testing.T, ts *httptest.Server, path string, body any, out any) (int, string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode, resp.Header.Get(EffectiveMappingHeader)
}

func TestControllerDecisionSurvivesWarmRestart(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	dir := t.TempDir()
	st, err := mapstore.Open(mapstore.Options{Dir: dir})
	if err != nil {
		t.Fatalf("mapstore.Open: %v", err)
	}

	cfg := controllerTestConfig()
	cfg.Store = st
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())

	spec := controllerRequestedSpec()
	postSubtrees(t, ts, spec, 16)
	if n := srv.ControllerTick(time.Now()); n != 1 {
		t.Fatalf("migrated %d entries, want 1", n)
	}
	ts.Close()
	shutdownServer(t, srv) // flushes resident mappings and closes the store

	// Restart against the same directory: the persisted decision must
	// re-apply the override and the flushed COLOR artifact must serve
	// without a single re-materialization.
	st2, err := mapstore.Open(mapstore.Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	cfg2 := controllerTestConfig()
	cfg2.Store = st2
	srv2 := New(cfg2)
	if admitted := srv2.WarmStart(16); admitted == 0 {
		t.Fatal("warm start admitted nothing")
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		shutdownServer(t, srv2)
	}()

	wantEffective := MappingSpec{Alg: "color", Levels: 12, M: 4}
	if got := srv2.reg.Resolve(spec); got != wantEffective {
		t.Fatalf("restart Resolve(%s) = %s, want %s", spec.Key(), got.Key(), wantEffective.Key())
	}
	var resp TemplateCostResponse
	r := TemplateCostRequest{Mapping: spec, Kind: "S", Size: 7,
		Anchor: &NodeRef{Index: 3, Level: 3}}
	status, hdr := postWithHeader(t, ts2, "/v1/template-cost", r, &resp)
	if status != 200 || hdr != wantEffective.Key() {
		t.Fatalf("restart request: status %d, header %q", status, hdr)
	}
	if resp.Conflicts != 0 {
		t.Errorf("restart S(7) cost %d conflicts, want 0", resp.Conflicts)
	}
	if got := srv2.met.registryAcquireMaterializes.Load(); got != 0 {
		t.Errorf("restart re-materialized %d mappings, want 0", got)
	}
}

// TestControllerBenchSmoke runs a scaled-down phase-shift comparison:
// the controller must migrate, beat both statics on observed conflicts,
// and keep the bound monitor at zero.
func TestControllerBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke")
	}
	res, err := RunControllerBench(ControllerBenchConfig{
		Requests: 480,
		Clients:  4,
		Rounds:   3,
	})
	if err != nil {
		t.Fatalf("RunControllerBench: %v (result %+v)", err, res)
	}
	if res.Controller.Migrations < 1 {
		t.Errorf("controller never migrated: %+v", res.Controller)
	}
	if res.Controller.EffectiveKey != "color/H=12/m=4" {
		t.Errorf("controller ended on %s", res.Controller.EffectiveKey)
	}
	if !res.BeatsLevelcyclic || !res.BeatsMod {
		t.Errorf("controller conflicts %d vs levelcyclic %d / mod %d",
			res.Controller.TotalConflicts,
			res.StaticLevelcyclic.TotalConflicts, res.StaticMod.TotalConflicts)
	}
	if res.ViolationsTotal != 0 {
		t.Errorf("%d bound violations", res.ViolationsTotal)
	}
}
