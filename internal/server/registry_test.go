package server

import (
	"sync"
	"testing"

	"repro/internal/tree"
)

func TestRegistrySingleFlight(t *testing.T) {
	met := &Metrics{}
	reg := NewRegistry(1<<30, met)
	spec := MappingSpec{Alg: "color", Levels: 18, M: 4}

	const goroutines = 50
	var wg sync.WaitGroup
	colors := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, err := reg.Acquire(spec)
			if err != nil {
				t.Error(err)
				return
			}
			colors[g] = m.Color(tree.V(100, 10))
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if colors[g] != colors[0] {
			t.Fatalf("inconsistent colors: %d vs %d", colors[g], colors[0])
		}
	}
	if misses := met.registryMisses.Load(); misses != 1 {
		t.Errorf("misses = %d, want 1 (single-flight build)", misses)
	}
	if hits := met.registryHits.Load(); hits != goroutines-1 {
		t.Errorf("hits = %d, want %d", hits, goroutines-1)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	met := &Metrics{}
	// Random mappings at 12 levels cost 4·(2^12 - 1) ≈ 16 KiB each; a tiny
	// budget forces eviction after a handful of entries.
	reg := NewRegistry(registryShards*20<<10, met)

	for i := 0; i < 64; i++ {
		spec := MappingSpec{Alg: "random", Levels: 12, Modules: 7, Seed: int64(i)}
		if _, err := reg.Acquire(spec); err != nil {
			t.Fatal(err)
		}
	}
	if evictions := met.registryEvictions.Load(); evictions == 0 {
		t.Error("no evictions under a tiny budget")
	}
	if got, want := reg.Bytes(), int64(registryShards*20<<10+64<<10); got > want {
		t.Errorf("cached bytes %d above budget+slack %d", got, want)
	}
	// Evicted entries rebuild on demand and still answer consistently.
	spec := MappingSpec{Alg: "random", Levels: 12, Modules: 7, Seed: 0}
	m1, err := reg.Acquire(spec)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := reg.Acquire(spec)
	if err != nil {
		t.Fatal(err)
	}
	for h := int64(0); h < 100; h++ {
		n := tree.FromHeapIndex(h * 37 % 4095)
		if m1.Color(n) != m2.Color(n) {
			t.Fatalf("rebuilt mapping disagrees at %v", n)
		}
	}
}

func TestRegistryKeysNormalize(t *testing.T) {
	// Irrelevant fields must not split the cache.
	a := MappingSpec{Alg: "mod", Levels: 10, Modules: 7, Seed: 1, M: 3}
	b := MappingSpec{Alg: "mod", Levels: 10, Modules: 7, Seed: 99, M: 5}
	if a.Key() != b.Key() {
		t.Errorf("keys differ for equivalent specs: %q vs %q", a.Key(), b.Key())
	}
	// Policy default and explicit band-cyclic coincide.
	c := MappingSpec{Alg: "labeltree", Levels: 10, Modules: 31}
	d := MappingSpec{Alg: "labeltree", Levels: 10, Modules: 31, Policy: "band-cyclic"}
	if c.Key() != d.Key() {
		t.Errorf("labeltree default policy key differs: %q vs %q", c.Key(), d.Key())
	}
	e := MappingSpec{Alg: "labeltree", Levels: 10, Modules: 31, Policy: "balanced"}
	if e.Key() == c.Key() {
		t.Error("balanced policy must not share the band-cyclic cache entry")
	}
}

func TestRegistryConcurrentMixedSpecs(t *testing.T) {
	met := &Metrics{}
	reg := NewRegistry(1<<22, met)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				spec := MappingSpec{Alg: "random", Levels: 10, Modules: 5, Seed: int64(i % 7)}
				if g%2 == 0 {
					spec = MappingSpec{Alg: "labeltree", Levels: 20, Modules: 15 + 2*(i%5)}
				}
				m, err := reg.Acquire(spec)
				if err != nil {
					t.Errorf("acquire %+v: %v", spec, err)
					return
				}
				if c := m.Color(tree.V(3, 5)); c < 0 || c >= m.Modules() {
					t.Errorf("color %d out of range for %+v", c, spec)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestSpecValidation(t *testing.T) {
	bad := []MappingSpec{
		{},
		{Alg: "color", Levels: 10, M: 1},
		{Alg: "color", Levels: 10, M: 6},
		{Alg: "color", Levels: 0, M: 3},
		{Alg: "labeltree", Levels: 10, Modules: 2},
		{Alg: "labeltree", Levels: 10, Modules: 1 << 20},
		{Alg: "labeltree", Levels: 10, Modules: 31, Policy: "zigzag"},
		{Alg: "mod", Levels: 10, Modules: 0},
		{Alg: "random", Levels: 30, Modules: 7},
		{Alg: "quantum", Levels: 10, Modules: 7},
	}
	for _, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("spec %+v unexpectedly valid", sp)
		}
	}
	good := []MappingSpec{
		{Alg: "color", Levels: 20, M: 3},
		{Alg: "labeltree", Levels: 30, Modules: 31, Policy: "balanced"},
		{Alg: "mod", Levels: 40, Modules: 7},
		{Alg: "levelcyclic", Levels: 12, Modules: 3},
		{Alg: "random", Levels: 22, Modules: 9, Seed: 5},
	}
	for _, sp := range good {
		if err := sp.Validate(); err != nil {
			t.Errorf("spec %+v rejected: %v", sp, err)
		}
		if _, _, err := sp.build(); err != nil {
			t.Errorf("spec %+v failed to build: %v", sp, err)
		}
	}
}
