// The retrieval benchmark: prices the ColorBatch kernels against the
// per-node Mapping.Color interface path — first in-process (the compute
// loops alone, which is what the ≥5x kernel claim is about), then on the
// real serving path by driving explicit /v1/color batches over HTTP with
// the kernel enabled and disabled. The serving comparison carries the
// kernel metrics series and the obsv batch_compute stage histograms as
// evidence that the hot path actually ran the kernel, not just that a
// microbenchmark did.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coloring"
	"repro/internal/obsv"
	"repro/internal/tree"
)

// RetrievalBenchConfig parameterizes one kernel benchmark run.
type RetrievalBenchConfig struct {
	// Levels is the tree height of every benchmarked mapping (default 20).
	Levels int
	// BatchSizes are the batch lengths priced in-process (default 64,
	// 256, 1024 — the acceptance bar reads at 64).
	BatchSizes []int
	// NodesPerCase is the per-(alg, size) node budget of the in-process
	// measurement (default 2,000,000).
	NodesPerCase int
	// ServeClients / ServeRequests drive the HTTP comparison: each request
	// is one explicit batch of ServeBatch nodes (defaults 16 / 2000 / 256).
	ServeClients  int
	ServeRequests int
	ServeBatch    int
	// Seed seeds the node streams.
	Seed int64
}

func (c RetrievalBenchConfig) withDefaults() RetrievalBenchConfig {
	if c.Levels <= 0 {
		c.Levels = 20
	}
	if len(c.BatchSizes) == 0 {
		c.BatchSizes = []int{64, 256, 1024}
	}
	if c.NodesPerCase <= 0 {
		c.NodesPerCase = 2_000_000
	}
	if c.ServeClients <= 0 {
		c.ServeClients = 16
	}
	if c.ServeRequests <= 0 {
		c.ServeRequests = 2000
	}
	if c.ServeBatch <= 0 {
		c.ServeBatch = 256
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// retrievalBenchSpecs are the registry algs the bench prices, at the
// given tree height. Random stays at its materialization cap.
func retrievalBenchSpecs(levels int) []MappingSpec {
	rnd := levels
	if rnd > maxRandomLevels {
		rnd = maxRandomLevels
	}
	return []MappingSpec{
		{Alg: "color", Levels: levels, M: 4},
		{Alg: "labeltree", Levels: levels, Modules: 1024},
		{Alg: "labeltree", Levels: levels, Modules: 1024, Policy: "balanced"},
		{Alg: "mod", Levels: levels, Modules: 1021},
		{Alg: "levelcyclic", Levels: levels, Modules: 1021},
		{Alg: "random", Levels: rnd, Modules: 1021, Seed: 7},
	}
}

// KernelBenchResult is one in-process (alg, batch size) measurement.
type KernelBenchResult struct {
	Alg       string `json:"alg"`
	Mapping   string `json:"mapping"`
	BatchSize int    `json:"batch_size"`
	Nodes     int64  `json:"nodes"`
	// KernelNSPerNode is the ColorBatch kernel; PerNodeNSPerNode is the
	// old serving loop (one Mapping.Color interface call per node).
	KernelNSPerNode    float64 `json:"kernel_ns_per_node"`
	PerNodeNSPerNode   float64 `json:"per_node_ns_per_node"`
	KernelNodesPerSec  float64 `json:"kernel_nodes_per_sec"`
	PerNodeNodesPerSec float64 `json:"per_node_nodes_per_sec"`
	Speedup            float64 `json:"speedup"`
}

// ServingKernelRun is one HTTP run of the explicit-batch workload.
type ServingKernelRun struct {
	Mode               string  `json:"mode"` // "kernel" or "per_node"
	Batches            int64   `json:"batches"`
	Errors             int64   `json:"errors"`
	Seconds            float64 `json:"seconds"`
	NodesPerSec        float64 `json:"nodes_per_sec"`
	KernelBatches      int64   `json:"kernel_batches"`
	FallbackBatches    int64   `json:"fallback_batches"`
	BatchComputeMeanNS float64 `json:"batch_compute_mean_ns"`
	// TraceBatchComputeMeanUS is the obsv batch_compute stage mean from
	// the PR 4 tracing layer — the pprof-label/tracing evidence that the
	// measured time sits in the compute stage, not elsewhere.
	TraceBatchComputeMeanUS float64 `json:"trace_batch_compute_mean_us"`
}

// ServingKernelComparison pairs the kernel-on and kernel-off runs of the
// same explicit-batch workload against one mapping spec.
type ServingKernelComparison struct {
	Mapping        MappingSpec      `json:"mapping"`
	BatchSize      int              `json:"batch_size"`
	Kernel         ServingKernelRun `json:"kernel"`
	PerNode        ServingKernelRun `json:"per_node"`
	ComputeSpeedup float64          `json:"compute_speedup"` // per_node / kernel mean compute ns
}

// RetrievalBenchReport is the BENCH_pr6.json document.
type RetrievalBenchReport struct {
	Levels  int                       `json:"levels"`
	Kernels []KernelBenchResult       `json:"kernels"`
	Serving []ServingKernelComparison `json:"serving"`
}

// benchNodes draws count nodes uniformly over the full tree, skewed
// nowhere in particular: every level is hit in proportion to its width,
// so deep levels (the expensive ones for chain-walking retrieval)
// dominate exactly as they do in a uniform key space.
func benchNodes(levels, count int, seed int64) []tree.Node {
	rng := rand.New(rand.NewSource(seed))
	space := tree.New(levels).Nodes()
	nodes := make([]tree.Node, count)
	for i := range nodes {
		nodes[i] = tree.FromHeapIndex(rng.Int63n(space))
	}
	return nodes
}

// RunRetrievalKernelBench prices ColorBatch against the per-node
// interface loop for one built mapping at one batch size.
func RunRetrievalKernelBench(sp MappingSpec, batchSize, nodeBudget int, seed int64) (KernelBenchResult, error) {
	m, _, err := sp.build()
	if err != nil {
		return KernelBenchResult{}, fmt.Errorf("build %s: %w", sp.Key(), err)
	}
	// A pool much larger than any batch keeps the comparison honest:
	// every timed batch is a fresh window of nodes (no 64-node pattern
	// for the branch predictor to memorize), as in real serving.
	pool := nodeBudget
	if pool > 1<<18 {
		pool = 1 << 18
	}
	if pool < batchSize {
		pool = batchSize
	}
	nodes := benchNodes(sp.Levels, pool, seed)
	dst := make([]int, batchSize)
	windows := pool / batchSize
	reps := nodeBudget / (windows * batchSize)
	if reps < 3 {
		// At least three repetitions so the min-of-reps below has
		// something to choose from on a noisy machine.
		reps = 3
	}

	// Warm both paths (page in the tables, settle branch predictors).
	coloring.ColorBatch(m, dst, nodes[:batchSize])
	for i, n := range nodes[:batchSize] {
		dst[i] = m.Color(n)
	}

	// Interleave the two paths and keep each path's best repetition:
	// alternating on a sub-second scale means both paths see the same
	// frequency/steal environment, and min-of-reps discards the
	// repetitions a neighbor perturbed.
	var kernelDur, perNodeDur time.Duration
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for off := 0; off+batchSize <= pool; off += batchSize {
			coloring.ColorBatch(m, dst, nodes[off:off+batchSize])
		}
		if d := time.Since(start); rep == 0 || d < kernelDur {
			kernelDur = d
		}
		start = time.Now()
		for off := 0; off+batchSize <= pool; off += batchSize {
			batch := nodes[off : off+batchSize]
			for i, n := range batch {
				dst[i] = m.Color(n)
			}
		}
		if d := time.Since(start); rep == 0 || d < perNodeDur {
			perNodeDur = d
		}
	}

	total := int64(windows) * int64(batchSize)
	res := KernelBenchResult{
		Alg:              sp.Alg,
		Mapping:          coloring.NameOf(m),
		BatchSize:        batchSize,
		Nodes:            total,
		KernelNSPerNode:  float64(kernelDur.Nanoseconds()) / float64(total),
		PerNodeNSPerNode: float64(perNodeDur.Nanoseconds()) / float64(total),
	}
	if kernelDur > 0 {
		res.KernelNodesPerSec = float64(total) / kernelDur.Seconds()
	}
	if perNodeDur > 0 {
		res.PerNodeNodesPerSec = float64(total) / perNodeDur.Seconds()
	}
	if res.KernelNSPerNode > 0 {
		res.Speedup = res.PerNodeNSPerNode / res.KernelNSPerNode
	}
	return res, nil
}

// runServingKernel drives explicit /v1/color batches against a fresh
// in-process server and reports the kernel metrics it recorded.
func runServingKernel(cfg RetrievalBenchConfig, sp MappingSpec, disableKernel bool) (ServingKernelRun, error) {
	mode := "kernel"
	if disableKernel {
		mode = "per_node"
	}
	srv := New(Config{
		Addr:               "127.0.0.1:0",
		Workers:            4,
		DisableBatchKernel: disableKernel,
	})
	if err := srv.Start(); err != nil {
		return ServingKernelRun{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	url := "http://" + srv.Addr() + "/v1/color"
	transport := &http.Transport{
		MaxIdleConns:        cfg.ServeClients * 2,
		MaxIdleConnsPerHost: cfg.ServeClients * 2,
	}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	defer transport.CloseIdleConnections()

	perClient := cfg.ServeRequests / cfg.ServeClients
	if perClient < 1 {
		perClient = 1
	}
	var ok, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.ServeClients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			space := tree.New(sp.Levels).Nodes()
			refs := make([]NodeRef, cfg.ServeBatch)
			var body bytes.Buffer
			for i := 0; i < perClient; i++ {
				for j := range refs {
					n := tree.FromHeapIndex(rng.Int63n(space))
					refs[j] = NodeRef{Index: n.Index, Level: n.Level}
				}
				body.Reset()
				_ = json.NewEncoder(&body).Encode(ColorRequest{Mapping: sp, Nodes: refs})
				resp, err := client.Post(url, "application/json", bytes.NewReader(body.Bytes()))
				if err != nil {
					errs.Add(1)
					continue
				}
				_ = resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					ok.Add(1)
				} else {
					errs.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := srv.Metrics().Snapshot()
	run := ServingKernelRun{
		Mode:            mode,
		Batches:         ok.Load(),
		Errors:          errs.Load(),
		Seconds:         elapsed.Seconds(),
		KernelBatches:   snap.KernelBatches,
		FallbackBatches: snap.FallbackBatches,
	}
	if elapsed > 0 {
		run.NodesPerSec = float64(ok.Load()) * float64(cfg.ServeBatch) / elapsed.Seconds()
	}
	if snap.BatchComputeNS.Count > 0 {
		run.BatchComputeMeanNS = snap.BatchComputeNS.Mean
	}
	if st, found := srv.Tracer().Snapshot().Stages[obsv.StageBatchCompute.String()]; found {
		run.TraceBatchComputeMeanUS = st.MeanUS
	}
	return run, nil
}

// RunRetrievalBench executes the full benchmark: the in-process kernel
// sweep over every registry alg and batch size, then the serving-path
// A/B on the two table-backed algs.
func RunRetrievalBench(cfg RetrievalBenchConfig) (RetrievalBenchReport, error) {
	cfg = cfg.withDefaults()
	rep := RetrievalBenchReport{Levels: cfg.Levels}
	for _, sp := range retrievalBenchSpecs(cfg.Levels) {
		if err := sp.Validate(); err != nil {
			return rep, fmt.Errorf("bench spec %s: %w", sp.Key(), err)
		}
		for _, size := range cfg.BatchSizes {
			res, err := RunRetrievalKernelBench(sp, size, cfg.NodesPerCase, cfg.Seed)
			if err != nil {
				return rep, err
			}
			rep.Kernels = append(rep.Kernels, res)
		}
	}
	// Serving-path A/B on the two table-backed retrieval algs — the ones
	// the tentpole claim is about.
	for _, sp := range []MappingSpec{
		{Alg: "color", Levels: cfg.Levels, M: 4},
		{Alg: "labeltree", Levels: cfg.Levels, Modules: 1024},
	} {
		kernel, err := runServingKernel(cfg, sp, false)
		if err != nil {
			return rep, err
		}
		perNode, err := runServingKernel(cfg, sp, true)
		if err != nil {
			return rep, err
		}
		cmp := ServingKernelComparison{
			Mapping:   sp,
			BatchSize: cfg.ServeBatch,
			Kernel:    kernel,
			PerNode:   perNode,
		}
		if kernel.BatchComputeMeanNS > 0 {
			cmp.ComputeSpeedup = perNode.BatchComputeMeanNS / kernel.BatchComputeMeanNS
		}
		rep.Serving = append(rep.Serving, cmp)
	}
	return rep, nil
}
