// Serving metrics: lock-free counters and power-of-two histograms exposed
// as a /debug/vars-style JSON snapshot. Everything here is written on the
// hot path, so the recording side is a single atomic add; aggregation cost
// is paid only by the scrape.
package server

import (
	"math/bits"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/flightrec"
	"repro/internal/mapstore"
	dm "repro/internal/metrics"
	"repro/internal/pms"
)

// histBuckets covers 2^0 … 2^27 (µs buckets reach ~134 s; batch-size
// buckets reach 2^27 items, far above any admitted batch).
const histBuckets = 28

// The disk tier's load histogram must share this geometry for its
// buckets to translate label-for-label.
var _ = [1]struct{}{}[histBuckets-mapstore.LoadBuckets]

// histogram is a power-of-two bucketed distribution: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
type histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func (h *histogram) observe(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[i].Add(1)
}

// HistogramSnapshot is the exported form of a histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // upper bound → count, zero buckets omitted
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
		s.Buckets = make(map[string]int64)
		for i := range h.buckets {
			if c := h.buckets[i].Load(); c > 0 {
				s.Buckets[bucketLabel(i)] = c
			}
		}
	}
	return s
}

func bucketLabel(i int) string {
	// Upper bound of bucket i is 2^i - 1 (bucket 0 holds v == 0).
	if i == histBuckets-1 {
		return "inf"
	}
	v := (int64(1) << uint(i)) - 1
	return itoa(v)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// endpointMetrics tracks one API endpoint.
type endpointMetrics struct {
	requests  atomic.Int64
	errors4xx atomic.Int64
	errors5xx atomic.Int64
	latencyUS histogram
}

// EndpointSnapshot is the exported form of endpointMetrics.
type EndpointSnapshot struct {
	Requests  int64             `json:"requests"`
	Errors4xx int64             `json:"errors_4xx"`
	Errors5xx int64             `json:"errors_5xx"`
	LatencyUS HistogramSnapshot `json:"latency_us"`
}

// Metrics is the server-wide metrics registry.
type Metrics struct {
	color        endpointMetrics
	templateCost endpointMetrics
	simulate     endpointMetrics
	heapRun      endpointMetrics
	heapWorkload endpointMetrics
	rangeQuery   endpointMetrics

	// tenants is the per-tenant admission table, wired at construction.
	tenants *tenantTable

	rejected429     atomic.Int64
	inflight        atomic.Int64
	batchesFlushed  atomic.Int64
	batchesRejected atomic.Int64 // coalesced batches failed because the pool queue was full
	coalescedJobs   atomic.Int64 // singleton requests that shared a flushed batch of size ≥ 2
	batchSize       histogram

	// Batch-compute path attribution: a kernel batch was colored by the
	// mapping's ColorBatch kernel in one pass; a fallback batch paid the
	// per-node Color interface loop (mapping without a kernel, or the
	// kernel disabled for A/B benching). batchComputeNS times the compute
	// itself, whichever path ran — nanoseconds, because a kernel batch of
	// 64 completes well under a microsecond.
	kernelBatches   atomic.Int64
	fallbackBatches atomic.Int64
	batchComputeNS  histogram

	registryHits      atomic.Int64
	registryMisses    atomic.Int64
	registryEvictions atomic.Int64
	registryBytes     atomic.Int64
	// Acquire attribution, split the way the tracing layer splits its
	// registry spans: a hit is an acquire answered from a finished cache
	// entry; a disk hit was resolved from the mapping store (mmap load,
	// no build); everything else (fresh build or a wait on another
	// request's in-flight build) pays materialization latency.
	registryAcquireHits         atomic.Int64
	registryAcquireDiskHits     atomic.Int64
	registryAcquireMaterializes atomic.Int64

	// Controller counters: decisions is every policy evaluation event
	// (hold or migrate), migrations counts entry switches, shadowEvals
	// counts candidate replays. controller renders the per-spec state
	// when the controller runs; nil otherwise.
	controllerDecisions   atomic.Int64
	controllerMigrations  atomic.Int64
	controllerShadowEvals atomic.Int64
	controller            func() *ControllerSnapshot

	// store is the attached disk tier; nil when pmsd runs memory-only.
	// Its counters live in the mapstore package and are snapshotted on
	// scrape.
	store *mapstore.Store

	// Aggregated pms counters from /v1/simulate replays, including the
	// IdleSteps counter the simulator has tracked since PR 1 but the
	// serving layer never surfaced.
	simBatches   atomic.Int64
	simRequests  atomic.Int64
	simCycles    atomic.Int64
	simConflicts atomic.Int64
	simIdleSteps atomic.Int64

	queueDepth func() int // wired to the worker pool at server construction
	domain     *dm.Domain // wired at server construction; nil when disabled
	// flight reads the flight recorder's counter surface; nil when the
	// recorder is disabled.
	flight func() flightrec.CountersSnapshot
}

// MetricsSnapshot is the /debug/vars JSON document.
type MetricsSnapshot struct {
	Color        EndpointSnapshot `json:"color"`
	TemplateCost EndpointSnapshot `json:"template_cost"`
	Simulate     EndpointSnapshot `json:"simulate"`
	HeapRun      EndpointSnapshot `json:"heap_run"`
	HeapWorkload EndpointSnapshot `json:"heap_workload"`
	RangeQuery   EndpointSnapshot `json:"range_query"`

	// Tenants lists per-tenant admission counters, sorted by tenant
	// name; empty until the first request arrives.
	Tenants []TenantSnapshot `json:"tenants,omitempty"`

	Rejected429     int64             `json:"rejected_429"`
	Inflight        int64             `json:"inflight"`
	QueueDepth      int               `json:"queue_depth"`
	BatchesFlushed  int64             `json:"batches_flushed"`
	BatchesRejected int64             `json:"batches_rejected"`
	CoalescedJobs   int64             `json:"coalesced_jobs"`
	BatchSize       HistogramSnapshot `json:"batch_size"`
	KernelBatches   int64             `json:"kernel_batches"`
	FallbackBatches int64             `json:"fallback_batches"`
	BatchComputeNS  HistogramSnapshot `json:"batch_compute_ns"`

	RegistryHits                int64 `json:"registry_hits"`
	RegistryMisses              int64 `json:"registry_misses"`
	RegistryEvictions           int64 `json:"registry_evictions"`
	RegistryBytes               int64 `json:"registry_bytes"`
	RegistryAcquireHits         int64 `json:"registry_acquire_hits"`
	RegistryAcquireDiskHits     int64 `json:"registry_acquire_disk_hits"`
	RegistryAcquireMaterializes int64 `json:"registry_acquire_materializes"`

	ControllerDecisions   int64 `json:"controller_decisions"`
	ControllerMigrations  int64 `json:"controller_migrations"`
	ControllerShadowEvals int64 `json:"controller_shadow_evals"`
	// Controller is the adaptive-mapping policy state; omitted when the
	// controller is disabled.
	Controller *ControllerSnapshot `json:"controller,omitempty"`

	// Store is the disk-tier snapshot; omitted when no store is attached.
	Store *StoreSnapshot `json:"store,omitempty"`

	SimBatches   int64 `json:"sim_batches"`
	SimRequests  int64 `json:"sim_requests"`
	SimCycles    int64 `json:"sim_cycles"`
	SimConflicts int64 `json:"sim_conflicts"`
	SimIdleSteps int64 `json:"sim_idle_steps"`

	// Domain is the model-level accounting snapshot (module loads, family
	// conflict histograms, bound monitor); omitted when accounting is
	// disabled.
	Domain *dm.DomainSnapshot `json:"domain,omitempty"`

	// FlightRec is the flight recorder / SLO watchdog counter surface;
	// omitted when the recorder is disabled.
	FlightRec *flightrec.CountersSnapshot `json:"flightrec,omitempty"`
}

func (em *endpointMetrics) snapshot() EndpointSnapshot {
	return EndpointSnapshot{
		Requests:  em.requests.Load(),
		Errors4xx: em.errors4xx.Load(),
		Errors5xx: em.errors5xx.Load(),
		LatencyUS: em.latencyUS.snapshot(),
	}
}

// Snapshot captures a consistent-enough view of all counters. Individual
// counters are read atomically; cross-counter skew during a concurrent
// scrape is acceptable for observability.
func (m *Metrics) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Color:        m.color.snapshot(),
		TemplateCost: m.templateCost.snapshot(),
		Simulate:     m.simulate.snapshot(),
		HeapRun:      m.heapRun.snapshot(),
		HeapWorkload: m.heapWorkload.snapshot(),
		RangeQuery:   m.rangeQuery.snapshot(),

		Rejected429:     m.rejected429.Load(),
		Inflight:        m.inflight.Load(),
		BatchesFlushed:  m.batchesFlushed.Load(),
		BatchesRejected: m.batchesRejected.Load(),
		CoalescedJobs:   m.coalescedJobs.Load(),
		BatchSize:       m.batchSize.snapshot(),
		KernelBatches:   m.kernelBatches.Load(),
		FallbackBatches: m.fallbackBatches.Load(),
		BatchComputeNS:  m.batchComputeNS.snapshot(),

		RegistryHits:                m.registryHits.Load(),
		RegistryMisses:              m.registryMisses.Load(),
		RegistryEvictions:           m.registryEvictions.Load(),
		RegistryBytes:               m.registryBytes.Load(),
		RegistryAcquireHits:         m.registryAcquireHits.Load(),
		RegistryAcquireDiskHits:     m.registryAcquireDiskHits.Load(),
		RegistryAcquireMaterializes: m.registryAcquireMaterializes.Load(),

		ControllerDecisions:   m.controllerDecisions.Load(),
		ControllerMigrations:  m.controllerMigrations.Load(),
		ControllerShadowEvals: m.controllerShadowEvals.Load(),

		SimBatches:   m.simBatches.Load(),
		SimRequests:  m.simRequests.Load(),
		SimCycles:    m.simCycles.Load(),
		SimConflicts: m.simConflicts.Load(),
		SimIdleSteps: m.simIdleSteps.Load(),
	}
	if m.queueDepth != nil {
		s.QueueDepth = m.queueDepth()
	}
	if m.tenants != nil {
		s.Tenants = m.tenants.snapshot()
	}
	if m.domain != nil {
		d := m.domain.Snapshot()
		s.Domain = &d
	}
	if m.store != nil {
		ss := storeSnapshot(m.store.Stats())
		s.Store = &ss
	}
	if m.controller != nil {
		s.Controller = m.controller()
	}
	if m.flight != nil {
		fc := m.flight()
		s.FlightRec = &fc
	}
	return s
}

// StoreSnapshot is the disk tier's exported counters.
type StoreSnapshot struct {
	Hits       int64             `json:"hits"`
	Misses     int64             `json:"misses"`
	Spills     int64             `json:"spills"`
	SpillDrops int64             `json:"spill_drops"`
	Corrupt    int64             `json:"corrupt"`
	Evictions  int64             `json:"evictions"`
	Bytes      int64             `json:"bytes"`
	Entries    int64             `json:"entries"`
	LoadNS     HistogramSnapshot `json:"load_ns"`
}

// storeSnapshot converts mapstore counters into the exported form. The
// store's load histogram uses the same power-of-two bucketing as the
// serving histograms, so the labels translate directly.
func storeSnapshot(st mapstore.Stats) StoreSnapshot {
	ss := StoreSnapshot{
		Hits:       st.Hits,
		Misses:     st.Misses,
		Spills:     st.Spills,
		SpillDrops: st.SpillDrops,
		Corrupt:    st.Corrupt,
		Evictions:  st.Evictions,
		Bytes:      st.Bytes,
		Entries:    st.Entries,
		LoadNS:     HistogramSnapshot{Count: st.LoadNSCount, Sum: st.LoadNSSum},
	}
	if ss.LoadNS.Count > 0 {
		ss.LoadNS.Mean = float64(ss.LoadNS.Sum) / float64(ss.LoadNS.Count)
		ss.LoadNS.Buckets = make(map[string]int64)
		for i, c := range st.LoadNSBuckets {
			if c > 0 {
				ss.LoadNS.Buckets[bucketLabel(i)] = c
			}
		}
	}
	return ss
}

// recordBatchCompute accounts one colored batch: which path colored it
// (ColorBatch kernel vs per-node fallback) and how long the compute took.
func (m *Metrics) recordBatchCompute(kernel bool, d time.Duration) {
	if kernel {
		m.kernelBatches.Add(1)
	} else {
		m.fallbackBatches.Add(1)
	}
	m.batchComputeNS.observe(d.Nanoseconds())
}

// recordSim folds one /v1/simulate replay's engine counters into the
// server-wide aggregates.
func (m *Metrics) recordSim(st pms.Stats) {
	m.simBatches.Add(st.Batches)
	m.simRequests.Add(st.Requests)
	m.simCycles.Add(st.Cycles)
	m.simConflicts.Add(st.Conflicts)
	m.simIdleSteps.Add(st.IdleSteps)
}

// endpoint returns the per-endpoint metrics for a handler name.
func (m *Metrics) endpoint(name string) *endpointMetrics {
	switch name {
	case "color":
		return &m.color
	case "template_cost":
		return &m.templateCost
	case "simulate":
		return &m.simulate
	case "heap_run":
		return &m.heapRun
	case "heap_workload":
		return &m.heapWorkload
	case "range_query":
		return &m.rangeQuery
	default:
		return nil
	}
}

// observe records one completed request on an endpoint.
func (em *endpointMetrics) observe(status int, d time.Duration) {
	em.requests.Add(1)
	switch {
	case status >= 500:
		em.errors5xx.Add(1)
	case status >= 400:
		em.errors4xx.Add(1)
	}
	em.latencyUS.observe(d.Microseconds())
}

// varsHandler serves the metrics snapshot as JSON.
func (m *Metrics) varsHandler(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, m.Snapshot())
}
