// The mapping registry: a sharded, byte-budgeted LRU cache of lazily
// materialized mappings. The serving layer never builds a Retriever or
// LABEL-TREE table per request — the first request for a spec builds it
// once (concurrent requests for the same key wait on the in-flight build
// instead of duplicating it) and every later request is a shard-local map
// hit. Least-recently-used entries are evicted when a shard exceeds its
// slice of the byte budget.
//
// With a mapstore attached the registry becomes the memory tier of a
// two-tier cache: eviction spills table-backed mappings to disk instead
// of discarding them, and a miss consults the store (an mmap load plus
// revalidation) before paying a materialization. The disk probe runs
// inside the single-flight window — concurrent requests for the same key
// wait on one load exactly as they wait on one build.
package server

import (
	"container/list"
	"hash/maphash"
	"sync"

	"repro/internal/coloring"
	"repro/internal/mapstore"
)

const registryShards = 8

// Registry caches built mappings by spec key.
type Registry struct {
	perShardBudget int64
	seed           maphash.Seed
	shards         [registryShards]registryShard
	met            *Metrics
	store          *mapstore.Store // nil without a disk tier

	// overrides redirects a client-requested spec key to the spec the
	// adaptive controller migrated it to. Handlers resolve exactly once
	// per request, so registry lookups, family attribution and
	// theorem-bound queries all agree on the effective algorithm.
	ovMu      sync.RWMutex
	overrides map[string]MappingSpec
}

type registryShard struct {
	mu    sync.Mutex
	items map[string]*regEntry
	lru   *list.List // front = most recently used; values are *regEntry
	bytes int64
}

// regEntry is one cached (or in-flight) build. ready is closed when the
// build finishes; m/bytes/err are immutable afterwards.
type regEntry struct {
	key   string
	ready chan struct{}
	m     coloring.Mapping
	bytes int64
	err   error
	elem  *list.Element
}

// NewRegistry builds a registry with the given total byte budget, which is
// split evenly across shards. Budgets below one shard still admit single
// entries: eviction never removes the entry just inserted.
func NewRegistry(budgetBytes int64, met *Metrics) *Registry {
	r := &Registry{
		perShardBudget: budgetBytes / registryShards,
		seed:           maphash.MakeSeed(),
		met:            met,
		overrides:      make(map[string]MappingSpec),
	}
	for i := range r.shards {
		r.shards[i].items = make(map[string]*regEntry)
		r.shards[i].lru = list.New()
	}
	return r
}

// AttachStore wires the disk tier under the registry. Call before
// serving traffic; the registry takes no ownership (the server closes
// the store at shutdown, after flushing resident entries into it).
func (r *Registry) AttachStore(st *mapstore.Store) { r.store = st }

func (r *Registry) shardFor(key string) *registryShard {
	return &r.shards[maphash.String(r.seed, key)%registryShards]
}

// Acquire returns the mapping for the spec, building it on first use.
// Safe for arbitrary concurrency; at most one build per key runs at a
// time. The returned mapping stays valid even if the entry is later
// evicted (eviction only drops the cache reference).
func (r *Registry) Acquire(spec MappingSpec) (coloring.Mapping, error) {
	m, _, err := r.AcquireInfo(spec)
	return m, err
}

// AcquireInfo is Acquire plus attribution: hit reports whether the call
// was answered from a finished cache entry. A call that waits on another
// request's in-flight build reports hit=false — its latency is build
// latency, and the tracing layer buckets it with materializations.
func (r *Registry) AcquireInfo(spec MappingSpec) (m coloring.Mapping, hit bool, err error) {
	key := spec.Key()
	sh := r.shardFor(key)

	sh.mu.Lock()
	if e, ok := sh.items[key]; ok {
		sh.lru.MoveToFront(e.elem)
		hit = e.done()
		sh.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, hit, e.err
		}
		r.met.registryHits.Add(1)
		if hit {
			r.met.registryAcquireHits.Add(1)
		} else {
			r.met.registryAcquireMaterializes.Add(1)
		}
		return e.m, hit, nil
	}
	e := &regEntry{key: key, ready: make(chan struct{})}
	e.elem = sh.lru.PushFront(e)
	sh.items[key] = e
	sh.mu.Unlock()
	r.met.registryMisses.Add(1)

	// Tier 2: the disk store. The probe (and on a hit, the mmap load and
	// revalidation) runs inside the single-flight window opened by the
	// placeholder above, so concurrent requests for this key wait on one
	// load. A disk hit is attributed separately from memory hits and from
	// materializations — it pays I/O latency, not build latency.
	if r.store != nil {
		if m, ok := r.store.Get(key); ok {
			victims := r.commitLocked(sh, e, m, sizeOf(m))
			r.met.registryAcquireDiskHits.Add(1)
			r.spill(victims)
			return m, false, nil
		}
	}

	m, bytes, err := spec.build()

	if err != nil {
		sh.mu.Lock()
		// Build errors are not cached: remove the placeholder so a later
		// request can retry (e.g. after a transient resource condition).
		delete(sh.items, key)
		sh.lru.Remove(e.elem)
		sh.mu.Unlock()
		e.err = err
		close(e.ready)
		return nil, false, err
	}
	victims := r.commitLocked(sh, e, m, bytes)
	r.met.registryAcquireMaterializes.Add(1)
	r.spill(victims)
	return m, false, nil
}

// commitLocked finishes a placeholder entry with its mapping, charges
// the shard, runs eviction, releases waiters, and returns the evicted
// entries for the caller to spill outside the shard lock.
func (r *Registry) commitLocked(sh *registryShard, e *regEntry, m coloring.Mapping, bytes int64) []*regEntry {
	sh.mu.Lock()
	e.m, e.bytes = m, bytes
	sh.bytes += bytes
	r.met.registryBytes.Add(bytes)
	victims := r.evictLocked(sh, e)
	sh.mu.Unlock()
	close(e.ready)
	return victims
}

// spill hands evicted mappings to the disk tier. PutAsync never blocks
// (a full spill queue drops and counts), so eviction latency stays off
// the request path.
func (r *Registry) spill(victims []*regEntry) {
	if r.store == nil {
		return
	}
	for _, v := range victims {
		r.store.PutAsync(v.key, v.m)
	}
}

// Preadmit warm-starts one key: the mapping is loaded from the attached
// store and inserted as a finished entry, so the first real request is a
// memory hit, not a materialization. Reports whether the key is resident
// afterwards.
func (r *Registry) Preadmit(key string) bool {
	if r.store == nil {
		return false
	}
	sh := r.shardFor(key)
	sh.mu.Lock()
	_, resident := sh.items[key]
	sh.mu.Unlock()
	if resident {
		return true
	}
	m, ok := r.store.Get(key)
	if !ok {
		return false
	}
	sh.mu.Lock()
	if _, raced := sh.items[key]; raced {
		sh.mu.Unlock()
		return true
	}
	e := &regEntry{key: key, ready: make(chan struct{})}
	e.elem = sh.lru.PushFront(e)
	sh.items[key] = e
	sh.mu.Unlock()
	victims := r.commitLocked(sh, e, m, sizeOf(m))
	r.spill(victims)
	return true
}

// FlushToStore synchronously spills every finished resident mapping with
// a disk codec, so a graceful shutdown persists the memory tier for the
// next process's warm start. Returns the number of spilled entries.
func (r *Registry) FlushToStore() int {
	if r.store == nil {
		return 0
	}
	flushed := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		done := make([]*regEntry, 0, len(sh.items))
		for _, e := range sh.items {
			if e.done() && e.err == nil {
				done = append(done, e)
			}
		}
		sh.mu.Unlock()
		for _, e := range done {
			if mapstore.CanStore(e.m) && r.store.Put(e.key, e.m) == nil {
				flushed++
			}
		}
	}
	return flushed
}

// evictLocked drops LRU-tail entries until the shard fits its budget,
// skipping the just-finished entry keep and any build still in flight.
// The evicted entries are returned so the caller can spill them to the
// disk tier after releasing the shard lock.
func (r *Registry) evictLocked(sh *registryShard, keep *regEntry) []*regEntry {
	var victims []*regEntry
	for sh.bytes > r.perShardBudget {
		el := sh.lru.Back()
		evicted := false
		for el != nil {
			v := el.Value.(*regEntry)
			prev := el.Prev()
			if v != keep && v.done() {
				sh.lru.Remove(el)
				delete(sh.items, v.key)
				sh.bytes -= v.bytes
				r.met.registryBytes.Add(-v.bytes)
				r.met.registryEvictions.Add(1)
				victims = append(victims, v)
				evicted = true
				break
			}
			el = prev
		}
		if !evicted {
			return victims // only keep and in-flight builds remain
		}
	}
	return victims
}

// done reports whether the entry's build has finished.
func (e *regEntry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// Bytes returns the cached bytes across all shards (for /debug/vars).
func (r *Registry) Bytes() int64 {
	var total int64
	for i := range r.shards {
		r.shards[i].mu.Lock()
		total += r.shards[i].bytes
		r.shards[i].mu.Unlock()
	}
	return total
}

// Len returns the number of cached entries across all shards.
func (r *Registry) Len() int {
	var total int
	for i := range r.shards {
		r.shards[i].mu.Lock()
		total += len(r.shards[i].items)
		r.shards[i].mu.Unlock()
	}
	return total
}

// Resolve maps a validated client spec to the spec actually served,
// following a controller-installed redirect when one exists. A spec
// without a redirect resolves to itself.
func (r *Registry) Resolve(spec MappingSpec) MappingSpec {
	r.ovMu.RLock()
	eff, ok := r.overrides[spec.Key()]
	r.ovMu.RUnlock()
	if ok {
		return eff
	}
	return spec
}

// SetOverride installs (or, when to's key equals fromKey, removes) the
// redirect for one requested key. Used by the controller's migration
// path and by warm starts re-applying persisted decisions.
func (r *Registry) SetOverride(fromKey string, to MappingSpec) {
	r.ovMu.Lock()
	if to.Key() == fromKey {
		delete(r.overrides, fromKey)
	} else {
		r.overrides[fromKey] = to
	}
	r.ovMu.Unlock()
}

// Overrides returns the current redirect table as requested-key →
// effective-key pairs (for /debug/vars and tests).
func (r *Registry) Overrides() map[string]string {
	r.ovMu.RLock()
	out := make(map[string]string, len(r.overrides))
	for k, v := range r.overrides {
		out[k] = v.Key()
	}
	r.ovMu.RUnlock()
	return out
}

// Migrate retires the entry under fromKey and admits the mapping for
// spec `to` in its place, flipping the redirect so later requests for
// fromKey resolve to the new spec. The byte budget never transiently
// holds both artifacts: the candidate is built (or disk-loaded)
// *uncharged*, the retired entry is uncharged first, and only then is
// the candidate committed — under the normal single-flight window, so a
// racing client build for the same key is honored rather than
// duplicated. The retired mapping is spilled to the disk tier (when one
// is attached), never silently dropped.
//
// prebuilt, when non-nil, is used as the candidate's mapping (the
// controller passes its shadow-scored copy so migration pays no second
// materialization); otherwise the store is probed and then the spec is
// built.
func (r *Registry) Migrate(fromKey string, to MappingSpec, prebuilt coloring.Mapping) (coloring.Mapping, error) {
	toKey := to.Key()
	m := prebuilt
	var bytes int64
	if m != nil {
		bytes = sizeOf(m)
	}
	if m == nil && r.store != nil {
		if sm, ok := r.store.Get(toKey); ok {
			m, bytes = sm, sizeOf(sm)
		}
	}
	if m == nil {
		var err error
		m, bytes, err = to.build()
		if err != nil {
			return nil, err
		}
	}

	// Retire the old artifact first: uncharge its bytes exactly once and
	// collect it for the disk spill. The artifact to retire lives under
	// the entry's *current effective* key — fromKey itself only until the
	// first migration, the previous migration target afterwards. An
	// in-flight build for that key is left alone — it finishes, commits,
	// and ages out via the LRU (its waiters still get a correct mapping;
	// only new requests redirect).
	retireKey := fromKey
	r.ovMu.RLock()
	if cur, ok := r.overrides[fromKey]; ok {
		retireKey = cur.Key()
	}
	r.ovMu.RUnlock()
	var retired *regEntry
	if retireKey != toKey {
		sh := r.shardFor(retireKey)
		sh.mu.Lock()
		if old, ok := sh.items[retireKey]; ok && old.done() && old.err == nil {
			sh.lru.Remove(old.elem)
			delete(sh.items, retireKey)
			sh.bytes -= old.bytes
			r.met.registryBytes.Add(-old.bytes)
			retired = old
		}
		sh.mu.Unlock()
	}

	// Admit the candidate under the single-flight window: a racing
	// placeholder (or an already-resident entry) wins and our prebuilt
	// copy is simply returned to the caller uncached.
	tsh := r.shardFor(toKey)
	tsh.mu.Lock()
	if _, raced := tsh.items[toKey]; raced {
		tsh.mu.Unlock()
	} else {
		e := &regEntry{key: toKey, ready: make(chan struct{})}
		e.elem = tsh.lru.PushFront(e)
		tsh.items[toKey] = e
		tsh.mu.Unlock()
		victims := r.commitLocked(tsh, e, m, bytes)
		r.spill(victims)
	}

	r.SetOverride(fromKey, to)
	if retired != nil {
		r.spill([]*regEntry{retired})
	}
	return m, nil
}
