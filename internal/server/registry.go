// The mapping registry: a sharded, byte-budgeted LRU cache of lazily
// materialized mappings. The serving layer never builds a Retriever or
// LABEL-TREE table per request — the first request for a spec builds it
// once (concurrent requests for the same key wait on the in-flight build
// instead of duplicating it) and every later request is a shard-local map
// hit. Least-recently-used entries are evicted when a shard exceeds its
// slice of the byte budget.
package server

import (
	"container/list"
	"hash/maphash"
	"sync"

	"repro/internal/coloring"
)

const registryShards = 8

// Registry caches built mappings by spec key.
type Registry struct {
	perShardBudget int64
	seed           maphash.Seed
	shards         [registryShards]registryShard
	met            *Metrics
}

type registryShard struct {
	mu    sync.Mutex
	items map[string]*regEntry
	lru   *list.List // front = most recently used; values are *regEntry
	bytes int64
}

// regEntry is one cached (or in-flight) build. ready is closed when the
// build finishes; m/bytes/err are immutable afterwards.
type regEntry struct {
	key   string
	ready chan struct{}
	m     coloring.Mapping
	bytes int64
	err   error
	elem  *list.Element
}

// NewRegistry builds a registry with the given total byte budget, which is
// split evenly across shards. Budgets below one shard still admit single
// entries: eviction never removes the entry just inserted.
func NewRegistry(budgetBytes int64, met *Metrics) *Registry {
	r := &Registry{
		perShardBudget: budgetBytes / registryShards,
		seed:           maphash.MakeSeed(),
		met:            met,
	}
	for i := range r.shards {
		r.shards[i].items = make(map[string]*regEntry)
		r.shards[i].lru = list.New()
	}
	return r
}

func (r *Registry) shardFor(key string) *registryShard {
	return &r.shards[maphash.String(r.seed, key)%registryShards]
}

// Acquire returns the mapping for the spec, building it on first use.
// Safe for arbitrary concurrency; at most one build per key runs at a
// time. The returned mapping stays valid even if the entry is later
// evicted (eviction only drops the cache reference).
func (r *Registry) Acquire(spec MappingSpec) (coloring.Mapping, error) {
	m, _, err := r.AcquireInfo(spec)
	return m, err
}

// AcquireInfo is Acquire plus attribution: hit reports whether the call
// was answered from a finished cache entry. A call that waits on another
// request's in-flight build reports hit=false — its latency is build
// latency, and the tracing layer buckets it with materializations.
func (r *Registry) AcquireInfo(spec MappingSpec) (m coloring.Mapping, hit bool, err error) {
	key := spec.Key()
	sh := r.shardFor(key)

	sh.mu.Lock()
	if e, ok := sh.items[key]; ok {
		sh.lru.MoveToFront(e.elem)
		hit = e.done()
		sh.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return nil, hit, e.err
		}
		r.met.registryHits.Add(1)
		if hit {
			r.met.registryAcquireHits.Add(1)
		} else {
			r.met.registryAcquireMaterializes.Add(1)
		}
		return e.m, hit, nil
	}
	e := &regEntry{key: key, ready: make(chan struct{})}
	e.elem = sh.lru.PushFront(e)
	sh.items[key] = e
	sh.mu.Unlock()
	r.met.registryMisses.Add(1)

	m, bytes, err := spec.build()

	sh.mu.Lock()
	if err != nil {
		// Build errors are not cached: remove the placeholder so a later
		// request can retry (e.g. after a transient resource condition).
		delete(sh.items, key)
		sh.lru.Remove(e.elem)
		sh.mu.Unlock()
		e.err = err
		close(e.ready)
		return nil, false, err
	}
	e.m, e.bytes = m, bytes
	sh.bytes += bytes
	r.met.registryBytes.Add(bytes)
	r.evictLocked(sh, e)
	sh.mu.Unlock()
	close(e.ready)
	r.met.registryAcquireMaterializes.Add(1)
	return m, false, nil
}

// evictLocked drops LRU-tail entries until the shard fits its budget,
// skipping the just-finished entry keep and any build still in flight.
func (r *Registry) evictLocked(sh *registryShard, keep *regEntry) {
	for sh.bytes > r.perShardBudget {
		el := sh.lru.Back()
		evicted := false
		for el != nil {
			v := el.Value.(*regEntry)
			prev := el.Prev()
			if v != keep && v.done() {
				sh.lru.Remove(el)
				delete(sh.items, v.key)
				sh.bytes -= v.bytes
				r.met.registryBytes.Add(-v.bytes)
				r.met.registryEvictions.Add(1)
				evicted = true
				break
			}
			el = prev
		}
		if !evicted {
			return // only keep and in-flight builds remain
		}
	}
}

// done reports whether the entry's build has finished.
func (e *regEntry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// Bytes returns the cached bytes across all shards (for /debug/vars).
func (r *Registry) Bytes() int64 {
	var total int64
	for i := range r.shards {
		r.shards[i].mu.Lock()
		total += r.shards[i].bytes
		r.shards[i].mu.Unlock()
	}
	return total
}

// Len returns the number of cached entries across all shards.
func (r *Registry) Len() int {
	var total int
	for i := range r.shards {
		r.shards[i].mu.Lock()
		total += len(r.shards[i].items)
		r.shards[i].mu.Unlock()
	}
	return total
}
