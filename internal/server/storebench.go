// The store benchmark: prices the disk tier against rematerialization.
// Phase one measures, per spec, a cold acquire (fresh registry, no store
// — the full table build) against a warm acquire (fresh registry over a
// store already holding the spec — an mmap load plus revalidation),
// min-of-reps on both sides. The headline spec is the largest COLOR
// retriever the registry admits (H=40, m=5: a 2^20-entry table whose
// build walks a Σ/Γ chain per slot), where the paper's
// expensive-to-build / cheap-to-reuse asymmetry is widest. Phase two
// drives a Zipf-skewed spec mix through a deliberately tiny memory tier
// so the registry constantly evicts and re-admits, and reports how much
// of that traffic the two cache tiers absorbed.
package server

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/coloring"
	"repro/internal/mapstore"
)

// StoreBenchConfig parameterizes one store benchmark run.
type StoreBenchConfig struct {
	// Dir is the benchmark's store directory; empty means a temp dir
	// removed when the run finishes.
	Dir string
	// Levels is the tree height of the non-headline cold/warm specs
	// (default 20); the headline COLOR spec is always H=40, m=5.
	Levels int
	// Reps is the min-of-reps repetition count per measurement (default 5).
	Reps int
	// MixSpecs is the spec-universe size of the Zipf phase (default 48).
	MixSpecs int
	// MixRequests is how many acquires the Zipf phase issues (default 4000).
	MixRequests int
	// MixCacheBytes is the memory-tier budget of the Zipf phase (default
	// 512 KiB — roughly one resident entry per registry shard, so the
	// disk tier does real work).
	MixCacheBytes int64
	// Seed seeds the Zipf draw.
	Seed int64
}

func (c StoreBenchConfig) withDefaults() StoreBenchConfig {
	if c.Levels <= 0 {
		c.Levels = 20
	}
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.MixSpecs <= 0 {
		c.MixSpecs = 48
	}
	if c.MixRequests <= 0 {
		c.MixRequests = 4000
	}
	if c.MixCacheBytes <= 0 {
		c.MixCacheBytes = 512 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// storeBenchSpecs are the cold/warm specs: the headline large-H COLOR
// table first, then one of each storable kind at the configured height.
func storeBenchSpecs(levels int) []MappingSpec {
	rnd := levels
	if rnd > maxRandomLevels {
		rnd = maxRandomLevels
	}
	return []MappingSpec{
		{Alg: "color", Levels: 40, M: 5},
		{Alg: "color", Levels: levels, M: 4},
		{Alg: "labeltree", Levels: levels, Modules: 1024, Policy: "balanced"},
		{Alg: "random", Levels: rnd, Modules: 1021, Seed: 7},
	}
}

// StoreBenchSpecResult is one cold-vs-warm comparison.
type StoreBenchSpecResult struct {
	Mapping MappingSpec `json:"mapping"`
	Key     string      `json:"key"`
	// EntryBytes is the on-disk artifact size (header + aligned payload).
	EntryBytes int64 `json:"entry_bytes"`
	// ColdNS is the best-of-reps fresh materialization through the
	// registry; WarmNS is the best-of-reps disk-tier acquire through a
	// fresh registry and freshly opened store.
	ColdNS  int64   `json:"cold_ns"`
	WarmNS  int64   `json:"warm_ns"`
	Speedup float64 `json:"speedup"` // cold / warm
}

// StoreBenchMixResult is the Zipf-mix tiering outcome.
type StoreBenchMixResult struct {
	Specs    int `json:"specs"`
	Requests int `json:"requests"`
	// Acquire attribution over the run: memory hits answered by the
	// resident tier, disk hits by the store, materializations by a build.
	MemoryHits   int64 `json:"memory_hits"`
	DiskHits     int64 `json:"disk_hits"`
	Materializes int64 `json:"materializes"`
	// TierHitRatio is (memory + disk hits) / acquires — the fraction of
	// traffic the two cache tiers absorbed.
	TierHitRatio float64       `json:"tier_hit_ratio"`
	Store        StoreSnapshot `json:"store"`
}

// StoreBenchReport is the BENCH_pr7.json document.
type StoreBenchReport struct {
	ColdWarm []StoreBenchSpecResult `json:"cold_warm"`
	Mix      StoreBenchMixResult    `json:"mix"`
}

// benchColdWarm measures one spec. The cold side rebuilds through a
// fresh registry each rep; the warm side reopens the store each rep so
// the decoded-entry cache never short-circuits the disk load (the OS
// page cache stays warm, as it would across a real restart).
func benchColdWarm(dir string, sp MappingSpec, reps int) (StoreBenchSpecResult, error) {
	res := StoreBenchSpecResult{Mapping: sp, Key: sp.Key()}
	var cold coloring.Mapping
	for rep := 0; rep < reps; rep++ {
		reg := NewRegistry(1<<30, &Metrics{})
		start := time.Now()
		m, err := reg.Acquire(sp)
		d := time.Since(start).Nanoseconds()
		if err != nil {
			return res, fmt.Errorf("cold acquire %s: %w", res.Key, err)
		}
		if rep == 0 || d < res.ColdNS {
			res.ColdNS = d
		}
		cold = m
	}

	// Seed the store with the artifact once, synchronously.
	st, err := mapstore.Open(mapstore.Options{Dir: dir})
	if err != nil {
		return res, err
	}
	if err := st.Put(res.Key, cold); err != nil {
		st.Close()
		return res, fmt.Errorf("spill %s: %w", res.Key, err)
	}
	res.EntryBytes = st.Stats().Bytes
	if err := st.Close(); err != nil {
		return res, err
	}

	for rep := 0; rep < reps; rep++ {
		st, err := mapstore.Open(mapstore.Options{Dir: dir})
		if err != nil {
			return res, err
		}
		met := &Metrics{}
		reg := NewRegistry(1<<30, met)
		reg.AttachStore(st)
		start := time.Now()
		if _, err := reg.Acquire(sp); err != nil {
			st.Close()
			return res, fmt.Errorf("warm acquire %s: %w", res.Key, err)
		}
		d := time.Since(start).Nanoseconds()
		if got := met.registryAcquireDiskHits.Load(); got != 1 {
			st.Close()
			return res, fmt.Errorf("warm acquire %s was not a disk hit (disk_hits=%d)", res.Key, got)
		}
		if rep == 0 || d < res.WarmNS {
			res.WarmNS = d
		}
		if err := st.Close(); err != nil {
			return res, err
		}
	}
	if res.WarmNS > 0 {
		res.Speedup = float64(res.ColdNS) / float64(res.WarmNS)
	}
	return res, nil
}

// runStoreMix drives the Zipf spec mix through a tiny memory tier over
// the store and attributes every acquire.
func runStoreMix(dir string, cfg StoreBenchConfig) (StoreBenchMixResult, error) {
	res := StoreBenchMixResult{Specs: cfg.MixSpecs, Requests: cfg.MixRequests}
	st, err := mapstore.Open(mapstore.Options{Dir: dir, SpillQueue: 1024})
	if err != nil {
		return res, err
	}
	met := &Metrics{}
	met.store = st
	reg := NewRegistry(cfg.MixCacheBytes, met)
	reg.AttachStore(st)

	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(cfg.MixSpecs-1))
	for i := 0; i < cfg.MixRequests; i++ {
		sp := MappingSpec{Alg: "random", Levels: 14, Modules: 257, Seed: int64(zipf.Uint64()) + 1}
		if _, err := reg.Acquire(sp); err != nil {
			st.Close()
			return res, fmt.Errorf("mix acquire %s: %w", sp.Key(), err)
		}
	}

	res.MemoryHits = met.registryAcquireHits.Load()
	res.DiskHits = met.registryAcquireDiskHits.Load()
	res.Materializes = met.registryAcquireMaterializes.Load()
	if total := res.MemoryHits + res.DiskHits + res.Materializes; total > 0 {
		res.TierHitRatio = float64(res.MemoryHits+res.DiskHits) / float64(total)
	}
	res.Store = storeSnapshot(st.Stats())
	return res, st.Close()
}

// RunStoreBench executes the full benchmark: the cold/warm sweep, then
// the Zipf tiering mix, each spec in its own store directory.
func RunStoreBench(cfg StoreBenchConfig) (StoreBenchReport, error) {
	cfg = cfg.withDefaults()
	var rep StoreBenchReport
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pmsd-storebench")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	for i, sp := range storeBenchSpecs(cfg.Levels) {
		if err := sp.Validate(); err != nil {
			return rep, fmt.Errorf("bench spec %s: %w", sp.Key(), err)
		}
		res, err := benchColdWarm(filepath.Join(dir, fmt.Sprintf("coldwarm-%d", i)), sp, cfg.Reps)
		if err != nil {
			return rep, err
		}
		rep.ColdWarm = append(rep.ColdWarm, res)
	}
	mix, err := runStoreMix(filepath.Join(dir, "mix"), cfg)
	if err != nil {
		return rep, err
	}
	rep.Mix = mix
	return rep, nil
}
