// Tests for the GET /metrics Prometheus exposition: a golden test pins
// the wire format byte-for-byte, a reflection test guarantees every
// /debug/vars snapshot field has a corresponding exposition series (so
// a counter added to one surface cannot silently miss the other), an
// end-to-end test drives real requests through the handlers and checks
// the bound monitor, and a leak test scrapes concurrently under load.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	dm "repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/testutil"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// populateDeterministic fills a fresh server's counters with fixed
// values so the exposition is byte-stable. Durations are chosen to land
// in distinct histogram buckets.
func populateDeterministic(s *Server) {
	m := s.met
	m.color.observe(200, 300*time.Microsecond)
	m.color.observe(400, 100*time.Microsecond)
	m.templateCost.observe(200, 1500*time.Microsecond)
	m.simulate.observe(500, 9*time.Microsecond)
	m.heapRun.observe(200, 700*time.Microsecond)
	m.heapWorkload.observe(200, 2500*time.Microsecond)
	m.rangeQuery.observe(400, 60*time.Microsecond)
	ta := m.tenants.get("alpha")
	ta.requests.Store(9)
	ta.rejected.Store(1)
	ta.inflight.Store(2)
	tb := m.tenants.get(anonTenant)
	tb.requests.Store(4)
	m.rejected429.Store(2)
	m.batchesFlushed.Store(4)
	m.batchesRejected.Store(1)
	m.coalescedJobs.Store(3)
	m.batchSize.observe(1)
	m.batchSize.observe(6)
	m.kernelBatches.Store(3)
	m.fallbackBatches.Store(1)
	m.batchComputeNS.observe(800)
	m.batchComputeNS.observe(12000)
	m.registryHits.Store(7)
	m.registryMisses.Store(2)
	m.registryEvictions.Store(1)
	m.registryBytes.Store(4096)
	m.registryAcquireHits.Store(5)
	m.registryAcquireMaterializes.Store(2)
	m.simBatches.Store(3)
	m.simRequests.Store(21)
	m.simCycles.Store(9)
	m.simConflicts.Store(6)
	m.simIdleSteps.Store(1)

	// One sampled trace with caller-supplied span durations; Finish is
	// not called (it would record a wall-clock total stage).
	base := time.Unix(1700000000, 0)
	tr := s.trc.Start("req-1", "color")
	tr.RecordSpan(obsv.StageAdmissionWait, base, 40*time.Microsecond)
	tr.RecordSpan(obsv.StageBatchCompute, base, 250*time.Microsecond)

	d := s.dom
	rec := d.Recorder()
	rec.Access(0, 5)
	rec.Access(2, 3)
	rec.Access(6, 4)
	rec.Batch(2)
	rec.Batch(0)
	d.ObserveFamily("S", 0)
	d.ObserveFamily("S", 1)
	d.ObserveFamily("P", 3)
	d.ObserveFamily("C", 9)
	d.ObserveSpec("color/H=10/m=3", "S", 1)
	d.ObserveSpec("color/H=10/m=3", "P", 0)
	d.ObserveSpec("mod/H=10/M=7", "C", 4)
	// One applicable bound check (Theorem 4: S(7) on color m=3) and one
	// inapplicable (mod mapping has no theorem).
	d.CheckBound(dm.BoundQuery{Alg: "color", M: 3, Levels: 10, Kind: "S", Size: 7}, 1)
	d.CheckBound(dm.BoundQuery{Alg: "mod", Levels: 10, Kind: "S", Size: 7}, 5)
}

func scrapeMetrics(t *testing.T, h http.Handler) (string, *dm.Scrape) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body := rec.Body.String()
	sc, err := dm.ParseExposition(body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return body, sc
}

// TestMetricsExpositionGolden pins the full exposition byte-for-byte.
// Run with -update to regenerate after an intentional format change.
func TestMetricsExpositionGolden(t *testing.T) {
	srv := New(Config{})
	defer shutdownServer(t, srv)
	populateDeterministic(srv)

	got, _ := scrapeMetrics(t, srv.Handler())

	golden := filepath.Join("testdata", "metrics_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Fatalf("exposition differs from golden (run with -update if intentional)\n%s", lineDiff(string(want), got))
	}
}

// lineDiff renders the first divergence between two multi-line strings.
func lineDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("first diff at line %d:\n  want: %q\n  got:  %q", i+1, w, g)
		}
	}
	return "no line diff (length mismatch?)"
}

// serverSeries maps every scalar MetricsSnapshot JSON field to the
// exposition series that carries it. A field missing from this table
// fails TestExpositionCoversSnapshotFields — extend both the exposition
// (prom.go) and this table when adding a counter.
var serverSeries = map[string]string{
	"rejected_429":                  "pmsd_rejected_429_total",
	"inflight":                      "pmsd_inflight",
	"queue_depth":                   "pmsd_queue_depth",
	"batches_flushed":               "pmsd_batches_flushed_total",
	"batches_rejected":              "pmsd_batches_rejected_total",
	"coalesced_jobs":                "pmsd_coalesced_jobs_total",
	"batch_size":                    "pmsd_batch_size_count",
	"kernel_batches":                "pmsd_kernel_batches_total",
	"fallback_batches":              "pmsd_fallback_batches_total",
	"batch_compute_ns":              "pmsd_batch_compute_ns_count",
	"registry_hits":                 "pmsd_registry_hits_total",
	"registry_misses":               "pmsd_registry_misses_total",
	"registry_evictions":            "pmsd_registry_evictions_total",
	"registry_bytes":                "pmsd_registry_bytes",
	"registry_acquire_hits":         "pmsd_registry_acquire_hits_total",
	"registry_acquire_disk_hits":    "pmsd_registry_acquire_disk_hits_total",
	"registry_acquire_materializes": "pmsd_registry_acquire_materializes_total",
	"controller_decisions":          "pmsd_controller_decisions_total",
	"controller_migrations":         "pmsd_controller_migrations_total",
	"controller_shadow_evals":       "pmsd_controller_shadow_evals_total",
	// The per-spec controller gauges only exist while the controller
	// runs; the decisions counter stands in for the snapshot pointer.
	"controller": "pmsd_controller_decisions_total",
	// The flight recorder's counter surface fans out into several
	// pmsd_flightrec_* / pmsd_slo_* series; the events counter stands in
	// for the snapshot pointer.
	"flightrec":      "pmsd_flightrec_events_total",
	"sim_batches":    "pmsd_sim_batches_total",
	"sim_requests":   "pmsd_sim_requests_total",
	"sim_cycles":     "pmsd_sim_cycles_total",
	"sim_conflicts":  "pmsd_sim_conflicts_total",
	"sim_idle_steps": "pmsd_sim_idle_steps_total",
}

// endpointSeries maps EndpointSnapshot fields to their labeled series.
var endpointSeries = map[string]string{
	"requests":   "pmsd_endpoint_requests_total",
	"errors_4xx": "pmsd_endpoint_errors_4xx_total",
	"errors_5xx": "pmsd_endpoint_errors_5xx_total",
	"latency_us": "pmsd_endpoint_latency_us_count",
}

// tenantSeries maps TenantSnapshot fields to their tenant-labeled series.
var tenantSeries = map[string]string{
	"tenant":   "pmsd_tenant_requests_total", // the label itself rides every series
	"requests": "pmsd_tenant_requests_total",
	"rejected": "pmsd_tenant_rejected_total",
	"inflight": "pmsd_tenant_inflight",
}

// storeSeries maps StoreSnapshot fields to their series.
var storeSeries = map[string]string{
	"hits":        "pmsd_store_hits_total",
	"misses":      "pmsd_store_misses_total",
	"spills":      "pmsd_store_spills_total",
	"spill_drops": "pmsd_store_spill_drops_total",
	"corrupt":     "pmsd_store_corrupt_total",
	"evictions":   "pmsd_store_evictions_total",
	"bytes":       "pmsd_store_bytes",
	"entries":     "pmsd_store_entries",
	"load_ns":     "pmsd_store_load_ns_count",
}

// domainSeries maps DomainSnapshot fields to their series.
var domainSeries = map[string]string{
	"module_accesses":      "pmsd_module_accesses_total",
	"total_accesses":       "pmsd_accesses_total",
	"overflow":             "pmsd_module_accesses_overflow_total",
	"active_modules":       "pmsd_module_active",
	"max_load":             "pmsd_module_load_max",
	"max_module":           "pmsd_module_hottest",
	"mean_load":            "pmsd_module_load_mean",
	"load_ratio":           "pmsd_module_load_ratio",
	"batches":              "pmsd_batches_total",
	"conflicts":            "pmsd_conflicts_total",
	"families":             "pmsd_template_conflicts_count",
	"bound_checks":         "pmsd_bound_checks_total",
	"bound_violations":     "pmsd_bound_violations_total",
	"bound_checks_skipped": "pmsd_bound_checks_skipped_total",
	"specs":                "pmsd_spec_template_observations_total",
}

func jsonTag(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	if i := strings.IndexByte(tag, ','); i >= 0 {
		tag = tag[:i]
	}
	return tag
}

// TestExpositionCoversSnapshotFields is the regression guard of
// satellite (a): every field of the /debug/vars snapshot (including the
// endpoint and domain sub-structures) must have a mapped series that is
// actually present in a populated scrape. Adding a snapshot field
// without extending the exposition fails here.
func TestExpositionCoversSnapshotFields(t *testing.T) {
	srv := New(Config{})
	defer shutdownServer(t, srv)
	populateDeterministic(srv)
	_, sc := scrapeMetrics(t, srv.Handler())

	have := make(map[string]bool)
	for _, n := range sc.Names() {
		have[n] = true
	}
	requireSeries := func(field, series string) {
		t.Helper()
		if series == "" {
			t.Errorf("snapshot field %q has no exposition series mapping — extend prom.go and this test's tables", field)
			return
		}
		if !have[series] {
			t.Errorf("snapshot field %q: mapped series %q absent from /metrics", field, series)
		}
	}

	epType := reflect.TypeOf(EndpointSnapshot{})
	top := reflect.TypeOf(MetricsSnapshot{})
	for i := 0; i < top.NumField(); i++ {
		f := top.Field(i)
		tag := jsonTag(f)
		switch {
		case f.Type == epType:
			for j := 0; j < epType.NumField(); j++ {
				inner := jsonTag(epType.Field(j))
				series := endpointSeries[inner]
				requireSeries(tag+"."+inner, series)
				if series != "" {
					if _, ok := sc.Value(series, dm.Label{Name: "endpoint", Value: tag}); !ok {
						t.Errorf("series %s missing endpoint=%q sample", series, tag)
					}
				}
			}
		case f.Type == reflect.TypeOf([]TenantSnapshot(nil)):
			tt := reflect.TypeOf(TenantSnapshot{})
			for j := 0; j < tt.NumField(); j++ {
				inner := jsonTag(tt.Field(j))
				series := tenantSeries[inner]
				requireSeries(tag+"."+inner, series)
				if series != "" {
					if _, ok := sc.Value(series, dm.Label{Name: "tenant", Value: "alpha"}); !ok {
						t.Errorf("series %s missing tenant=\"alpha\" sample", series)
					}
				}
			}
		case f.Type == reflect.TypeOf((*dm.DomainSnapshot)(nil)):
			dt := reflect.TypeOf(dm.DomainSnapshot{})
			for j := 0; j < dt.NumField(); j++ {
				inner := jsonTag(dt.Field(j))
				requireSeries("domain."+inner, domainSeries[inner])
			}
		case f.Type == reflect.TypeOf((*StoreSnapshot)(nil)):
			st := reflect.TypeOf(StoreSnapshot{})
			for j := 0; j < st.NumField(); j++ {
				inner := jsonTag(st.Field(j))
				requireSeries("store."+inner, storeSeries[inner])
			}
		default:
			requireSeries(tag, serverSeries[tag])
		}
	}
}

func shutdownServer(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

func postJSON(t *testing.T, client *http.Client, url, body string) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		t.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, buf.String())
	}
}

// TestMetricsEndToEndBoundMonitor drives real requests through the
// handlers and asserts the domain layer observed them: per-module
// accounting, family histograms, applicable bound checks with zero
// violations, simulate aggregates, and registry acquire attribution —
// on both /metrics and /debug/vars.
func TestMetricsEndToEndBoundMonitor(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		shutdownServer(t, srv)
	}()
	c := ts.Client()

	mapping := `{"alg":"color","levels":10,"m":3}`
	// Anchored S(7) at the root: Theorem 4 bound 1 applies (M=2^3-1=7).
	postJSON(t, c, ts.URL+"/v1/template-cost",
		`{"mapping":`+mapping+`,"kind":"S","size":7,"anchor":{"index":0,"level":0}}`)
	// Family P(6): Theorem 3 bound 0 applies (N=2^2+2=6 ≤ levels).
	postJSON(t, c, ts.URL+"/v1/template-cost",
		`{"mapping":`+mapping+`,"kind":"P","size":6}`)
	// Composite of two disjoint S(3): Theorem 6 bound 4*ceil(6/7)+2 = 6.
	postJSON(t, c, ts.URL+"/v1/template-cost",
		`{"mapping":`+mapping+`,"parts":[`+
			`{"kind":"S","anchor":{"index":0,"level":1},"size":3},`+
			`{"kind":"S","anchor":{"index":1,"level":1},"size":3}]}`)
	// One simulate replay: 4 requests across 2 batches.
	postJSON(t, c, ts.URL+"/v1/simulate",
		`{"mapping":`+mapping+`,"batches":[[0,1,2],[3]]}`)

	_, sc := scrapeMetrics(t, srv.Handler())
	mustValue := func(name string, labels ...dm.Label) float64 {
		t.Helper()
		v, ok := sc.Value(name, labels...)
		if !ok {
			t.Fatalf("series %s%v absent from /metrics", name, labels)
		}
		return v
	}

	if v := mustValue("pmsd_bound_checks_total"); v < 3 {
		t.Errorf("bound_checks_total = %v, want >= 3", v)
	}
	if v := mustValue("pmsd_bound_violations_total"); v != 0 {
		t.Errorf("bound_violations_total = %v, want 0", v)
	}
	if v := mustValue("pmsd_accesses_total"); v <= 0 {
		t.Errorf("accesses_total = %v, want > 0", v)
	}
	if len(sc.Series("pmsd_module_accesses_total")) == 0 {
		t.Error("no per-module access series")
	}
	if v := mustValue("pmsd_module_load_ratio"); v < 1 {
		t.Errorf("module_load_ratio = %v, want >= 1", v)
	}
	if v := mustValue("pmsd_sim_requests_total"); v != 4 {
		t.Errorf("sim_requests_total = %v, want 4", v)
	}
	mustValue("pmsd_sim_idle_steps_total")
	if v := mustValue("pmsd_registry_acquire_materializes_total"); v < 1 {
		t.Errorf("registry_acquire_materializes_total = %v, want >= 1", v)
	}
	for _, fam := range []string{"S", "P", "C"} {
		if _, ok := sc.Value("pmsd_template_conflicts_count", dm.Label{Name: "family", Value: fam}); !ok {
			t.Errorf("family histogram %q absent", fam)
		}
	}

	// The same attribution must appear in the /debug/vars JSON document.
	resp, err := c.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	if snap.RegistryAcquireMaterializes < 1 {
		t.Errorf("vars registry_acquire_materializes = %d, want >= 1", snap.RegistryAcquireMaterializes)
	}
	if snap.SimRequests != 4 {
		t.Errorf("vars sim_requests = %d, want 4", snap.SimRequests)
	}
	if snap.Domain == nil {
		t.Fatal("vars domain snapshot absent")
	}
	if snap.Domain.BoundViolations != 0 {
		t.Errorf("vars bound_violations = %d, want 0", snap.Domain.BoundViolations)
	}
	if snap.Domain.TotalAccesses <= 0 {
		t.Errorf("vars total_accesses = %d, want > 0", snap.Domain.TotalAccesses)
	}
}

// TestMetricsScrapeConcurrentNoLeak hammers /metrics from several
// scrapers while request traffic runs, then checks every goroutine
// wound down (satellite c's leak check for the scrape path).
func TestMetricsScrapeConcurrentNoLeak(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	c := ts.Client()

	const scrapers, writers, iters = 4, 4, 25
	var wg sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				resp, err := c.Get(ts.URL + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				var buf bytes.Buffer
				_, _ = buf.ReadFrom(resp.Body)
				resp.Body.Close()
				if _, err := dm.ParseExposition(buf.String()); err != nil {
					t.Errorf("mid-load scrape does not parse: %v", err)
					return
				}
			}
		}()
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := `{"mapping":{"alg":"color","levels":8,"m":2},"kind":"S","size":3,` +
				`"anchor":{"index":0,"level":` + fmt.Sprint(i%3) + `}}`
			for j := 0; j < iters; j++ {
				resp, err := c.Post(ts.URL+"/v1/template-cost", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("post: %v", err)
					return
				}
				_, _ = bytes.NewBuffer(nil).ReadFrom(resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	ts.Close()
	c.CloseIdleConnections()
	shutdownServer(t, srv)
}
