// Per-tenant admission and fairness accounting. Multi-tenant traffic
// identifies itself with the X-Tenant header; the server tracks
// requests, rejections and live inflight per tenant and can cap one
// tenant's inflight share below the global admission limit, so a single
// hot tenant saturating its cap still leaves capacity for the tail.
//
// The table is bounded: beyond MaxTenants distinct names, traffic is
// accounted under the "other" bucket (still capped), so label
// cardinality on /metrics cannot be driven unboundedly by clients.
package server

import (
	"sort"
	"sync"
	"sync/atomic"
)

// TenantHeader carries the tenant identity on the wire. It must match
// replay.TenantHeader (compile-time guarded in replaybench.go) so
// recorded traces replay under the same admission accounting.
const TenantHeader = "X-Tenant"

// anonTenant accounts traffic that does not identify itself;
// overflowTenant lumps tenants beyond the table cap.
const (
	anonTenant     = "anon"
	overflowTenant = "other"
)

// tenantCounters is one tenant's admission accounting.
type tenantCounters struct {
	requests atomic.Int64
	rejected atomic.Int64
	inflight atomic.Int64
}

// tenantTable maps tenant name → counters, bounded by max entries.
type tenantTable struct {
	mu  sync.RWMutex
	m   map[string]*tenantCounters
	max int
}

func newTenantTable(max int) *tenantTable {
	return &tenantTable{m: make(map[string]*tenantCounters), max: max}
}

// sanitizeTenant normalizes the wire value into a bounded, label-safe
// name: empty becomes "anon"; names that are too long or carry
// label-hostile characters collapse into "other".
func sanitizeTenant(name string) string {
	if name == "" {
		return anonTenant
	}
	if len(name) > 32 {
		return overflowTenant
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return overflowTenant
		}
	}
	return name
}

// get returns the counters for a (sanitized) tenant name, creating the
// entry if the table has room and folding into "other" when it does not.
func (tt *tenantTable) get(name string) *tenantCounters {
	tt.mu.RLock()
	tc := tt.m[name]
	tt.mu.RUnlock()
	if tc != nil {
		return tc
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if tc = tt.m[name]; tc != nil {
		return tc
	}
	// Reserve one slot for the overflow bucket itself so it can always
	// be created.
	if name != overflowTenant && len(tt.m) >= tt.max-1 {
		name = overflowTenant
		if tc = tt.m[name]; tc != nil {
			return tc
		}
	}
	tc = &tenantCounters{}
	tt.m[name] = tc
	return tc
}

// TenantSnapshot is one tenant's exported admission counters.
type TenantSnapshot struct {
	Tenant   string `json:"tenant"`
	Requests int64  `json:"requests"`
	Rejected int64  `json:"rejected"`
	Inflight int64  `json:"inflight"`
}

// snapshot exports all tenants sorted by name, so /debug/vars and the
// replay determinism check see a stable order.
func (tt *tenantTable) snapshot() []TenantSnapshot {
	tt.mu.RLock()
	out := make([]TenantSnapshot, 0, len(tt.m))
	for name, tc := range tt.m {
		out = append(out, TenantSnapshot{
			Tenant:   name,
			Requests: tc.requests.Load(),
			Rejected: tc.rejected.Load(),
			Inflight: tc.inflight.Load(),
		})
	}
	tt.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
