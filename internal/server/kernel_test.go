// Tests for the batch color kernels and the registry bookkeeping around
// them: a full-tree differential proves every registry alg's ColorBatch
// is bit-identical to per-node Color (plus a fuzz entry over random
// batches with duplicates and out-of-order nodes), the size-accounting
// test pins build() against the mappings' measured SizeBytes, the drift
// test locks Validate/Key/build to the same closed alg list, and the
// status tests pin spec-shaped failures to 400.
package server

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/coloring"
	"repro/internal/tree"
)

// kernelSpecs covers every registry algorithm across parameter corners:
// COLOR at several (H, m) including H below one band (H < N), LABEL-TREE
// under both policies including a single-group module count, and all
// three closed-form baselines plus the materialized random mapping.
func kernelSpecs() []MappingSpec {
	return []MappingSpec{
		{Alg: "color", Levels: 12, M: 2},
		{Alg: "color", Levels: 16, M: 3},
		{Alg: "color", Levels: 14, M: 4},           // H < N = 19: band0 covers the whole tree
		{Alg: "labeltree", Levels: 12, Modules: 3}, // Groups = 1: the d==1 divmod path
		{Alg: "labeltree", Levels: 14, Modules: 7},
		{Alg: "labeltree", Levels: 12, Modules: 100},
		{Alg: "labeltree", Levels: 13, Modules: 7, Policy: "balanced"},
		{Alg: "labeltree", Levels: 12, Modules: 64, Policy: "balanced"},
		{Alg: "mod", Levels: 12, Modules: 5},
		{Alg: "levelcyclic", Levels: 12, Modules: 7},
		{Alg: "random", Levels: 12, Modules: 9, Seed: 42},
	}
}

// fullTreeNodes returns every node of a levels-level tree in level order.
func fullTreeNodes(levels int) []tree.Node {
	t := tree.New(levels)
	nodes := make([]tree.Node, 0, t.Nodes())
	for j := 0; j < levels; j++ {
		for i := int64(0); i < t.LevelWidth(j); i++ {
			nodes = append(nodes, tree.V(i, j))
		}
	}
	return nodes
}

// TestColorBatchDifferential is the kernel correctness guard: for every
// registry alg, ColorBatch over the full tree must be bit-identical to
// per-node Color, the kernel path must actually engage (no registry
// mapping silently falls back), and a shuffled batch with duplicates
// must agree position-by-position.
func TestColorBatchDifferential(t *testing.T) {
	for _, sp := range kernelSpecs() {
		sp := sp
		t.Run(sp.Key(), func(t *testing.T) {
			if err := sp.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			m, _, err := sp.build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if _, ok := m.(coloring.BatchColorer); !ok {
				t.Fatalf("%T does not implement BatchColorer", m)
			}
			nodes := fullTreeNodes(sp.Levels)
			dst := make([]int, len(nodes))
			if !coloring.ColorBatch(m, dst, nodes) {
				t.Fatal("ColorBatch took the fallback path for a registry mapping")
			}
			for i, n := range nodes {
				if want := m.Color(n); dst[i] != want {
					t.Fatalf("node %v: kernel %d, Color %d", n, dst[i], want)
				}
			}

			// Shuffled with duplicates: order and repetition must not matter.
			rng := rand.New(rand.NewSource(7))
			batch := make([]tree.Node, 200)
			for i := range batch {
				batch[i] = nodes[rng.Intn(len(nodes))]
			}
			out := make([]int, len(batch))
			coloring.ColorBatch(m, out, batch)
			for i, n := range batch {
				if want := m.Color(n); out[i] != want {
					t.Fatalf("shuffled batch[%d] = %v: kernel %d, Color %d", i, n, out[i], want)
				}
			}
		})
	}
}

// fuzzMappings caches built mappings across fuzz iterations (building a
// COLOR retriever per exec would dominate the fuzz budget).
var fuzzMappings sync.Map // int -> coloring.Mapping

func fuzzMapping(t *testing.T, idx int) coloring.Mapping {
	t.Helper()
	if m, ok := fuzzMappings.Load(idx); ok {
		return m.(coloring.Mapping)
	}
	m, _, err := kernelSpecs()[idx].build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	fuzzMappings.Store(idx, m)
	return m
}

// FuzzColorBatchDifferential feeds random batches — arbitrary order,
// duplicates, boundary indices — through every kernel and cross-checks
// per-node Color.
func FuzzColorBatchDifferential(f *testing.F) {
	f.Add(uint8(0), int64(1), uint16(64))
	f.Add(uint8(3), int64(99), uint16(1))
	f.Add(uint8(6), int64(-5), uint16(512))
	f.Fuzz(func(t *testing.T, specIdx uint8, seed int64, size uint16) {
		specs := kernelSpecs()
		idx := int(specIdx) % len(specs)
		sp := specs[idx]
		m := fuzzMapping(t, idx)
		rng := rand.New(rand.NewSource(seed))
		n := int(size)%1024 + 1
		batch := make([]tree.Node, n)
		for i := range batch {
			lvl := rng.Intn(sp.Levels)
			width := tree.Pow2(lvl)
			var index int64
			switch rng.Intn(4) {
			case 0:
				index = 0
			case 1:
				index = width - 1
			default:
				index = rng.Int63n(width)
			}
			batch[i] = tree.V(index, lvl)
		}
		dst := make([]int, n)
		coloring.ColorBatch(m, dst, batch)
		for i, node := range batch {
			if want := m.Color(node); dst[i] != want {
				t.Fatalf("spec %s batch[%d] = %v: kernel %d, Color %d", sp.Key(), i, node, dst[i], want)
			}
		}
	})
}

// TestRegistrySizeAccountingMeasured pins build()'s registry charge to
// the mappings' own measured SizeBytes — the LRU budget must track live
// table lengths, not parameter-derived estimates. The old labeltree
// estimate charged tree.SubtreeSize(m)*4 off the wrong quantity; the
// large-M case locks in that the measured size stays linear in M.
func TestRegistrySizeAccountingMeasured(t *testing.T) {
	for _, sp := range kernelSpecs() {
		m, size, err := sp.build()
		if err != nil {
			t.Fatalf("%s: build: %v", sp.Key(), err)
		}
		if s, ok := m.(coloring.Sized); ok {
			if got := s.SizeBytes(); size != got {
				t.Errorf("%s: build charged %d bytes, SizeBytes reports %d", sp.Key(), size, got)
			}
		} else if size != 64 {
			t.Errorf("%s: unsized mapping charged %d bytes, want the 64-byte overhead", sp.Key(), size)
		}
		if size <= 0 {
			t.Errorf("%s: nonpositive size %d", sp.Key(), size)
		}
	}

	// Table-backed algs must charge at least their dominant table.
	colorSp := MappingSpec{Alg: "color", Levels: 16, M: 3}
	if _, size, _ := colorSp.build(); size < tree.SubtreeSize(6)*8 {
		t.Errorf("color size %d below its 2^N-entry table", size)
	}
	randSp := MappingSpec{Alg: "random", Levels: 12, Modules: 9, Seed: 1}
	if _, size, _ := randSp.build(); size < tree.New(12).Nodes()*4 {
		t.Errorf("random size %d below its dense color array", size)
	}

	// Large-M labeltree: the micro table is O(M); a few MiB at the cap,
	// never the 2^M explosion of the old estimate.
	big := MappingSpec{Alg: "labeltree", Levels: 30, Modules: 1 << 16}
	if err := big.Validate(); err != nil {
		t.Fatalf("big labeltree spec invalid: %v", err)
	}
	_, size, err := big.build()
	if err != nil {
		t.Fatalf("big labeltree build: %v", err)
	}
	if size <= 0 || size > 64<<20 {
		t.Errorf("labeltree M=2^16 size = %d bytes, want a sane O(M) figure", size)
	}
}

// TestRegistryBytesMatchBuilds checks the shard byte ledger agrees with
// the per-entry measured sizes after real acquires.
func TestRegistryBytesMatchBuilds(t *testing.T) {
	met := &Metrics{}
	reg := NewRegistry(1<<30, met)
	var want int64
	for _, sp := range kernelSpecs() {
		if _, err := reg.Acquire(sp); err != nil {
			t.Fatalf("%s: %v", sp.Key(), err)
		}
		_, size, err := sp.build()
		if err != nil {
			t.Fatal(err)
		}
		want += size
	}
	if got := reg.Bytes(); got != want {
		t.Errorf("registry bytes = %d, want %d (sum of measured sizes)", got, want)
	}
	if got := met.registryBytes.Load(); got != want {
		t.Errorf("registry_bytes metric = %d, want %d", got, want)
	}
}

// validSpecFor returns a known-good spec for each registry alg.
func validSpecFor(alg string) MappingSpec {
	switch alg {
	case "color":
		return MappingSpec{Alg: alg, Levels: 12, M: 3}
	case "labeltree":
		return MappingSpec{Alg: alg, Levels: 12, Modules: 7}
	case "random":
		return MappingSpec{Alg: alg, Levels: 12, Modules: 5, Seed: 1}
	default:
		return MappingSpec{Alg: alg, Levels: 12, Modules: 5}
	}
}

// TestSpecAlgSurfacesAgree is the drift guard of the Key() fix: the
// three spec surfaces (Validate, Key, build) accept exactly the algs in
// specAlgs, and every unknown alg is rejected by all three — Key() must
// never mint a cacheable key Validate would refuse.
func TestSpecAlgSurfacesAgree(t *testing.T) {
	for _, alg := range specAlgs {
		sp := validSpecFor(alg)
		if err := sp.Validate(); err != nil {
			t.Errorf("alg %q: Validate rejects a known-good spec: %v", alg, err)
		}
		if key := sp.Key(); strings.HasPrefix(key, "!invalid/") {
			t.Errorf("alg %q: Key() = %q marks a valid alg invalid", alg, key)
		}
		if _, _, err := sp.build(); err != nil {
			t.Errorf("alg %q: build fails on a validated spec: %v", alg, err)
		}
	}
	for _, alg := range []string{"", "colour", "COLOR", "label-tree", "basic", "mod ", "zzz"} {
		sp := validSpecFor("mod")
		sp.Alg = alg
		if err := sp.Validate(); err == nil {
			t.Errorf("alg %q: Validate accepted an unknown alg", alg)
		}
		if key := sp.Key(); !strings.HasPrefix(key, "!invalid/") {
			t.Errorf("alg %q: Key() = %q mints a valid-looking cache key", alg, key)
		}
		_, _, err := sp.build()
		if err == nil {
			t.Errorf("alg %q: build accepted an unknown alg", alg)
			continue
		}
		var sr *specRejected
		if !errors.As(err, &sr) {
			t.Errorf("alg %q: build error %v is not specRejected", alg, err)
		}
	}
}

// TestValidateImpliesBuild sweeps a parameter grid per alg: every spec
// Validate admits must build — the invariant that keeps registry build
// failures out of the 500 bucket entirely.
func TestValidateImpliesBuild(t *testing.T) {
	var specs []MappingSpec
	for _, levels := range []int{1, 2, 3, 12, 40} {
		for m := 1; m <= 6; m++ {
			specs = append(specs, MappingSpec{Alg: "color", Levels: levels, M: m})
		}
		for _, mod := range []int{2, 3, 4, 7, 100, 1 << 16} {
			for _, pol := range []string{"", "band-cyclic", "balanced"} {
				specs = append(specs, MappingSpec{Alg: "labeltree", Levels: levels, Modules: mod, Policy: pol})
			}
		}
		for _, mod := range []int{1, 5, 1 << 16} {
			specs = append(specs,
				MappingSpec{Alg: "mod", Levels: levels, Modules: mod},
				MappingSpec{Alg: "levelcyclic", Levels: levels, Modules: mod},
				MappingSpec{Alg: "random", Levels: levels, Modules: mod, Seed: 3})
		}
	}
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			continue // rejected up front: never reaches build
		}
		if _, _, err := sp.build(); err != nil {
			t.Errorf("spec %s passed Validate but failed build: %v", sp.Key(), err)
		}
	}
}

// TestWriteResultErrorStatuses pins the worker-error → HTTP mapping:
// spec-shaped build failures are 400s (even wrapped), apiErrors pass
// through, and only genuine server-side conditions become 500s.
func TestWriteResultErrorStatuses(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"overloaded", errOverloaded, http.StatusTooManyRequests},
		{"spec_rejected", &specRejected{errors.New("bad params")}, http.StatusBadRequest},
		{"spec_rejected_wrapped", fmt.Errorf("build: %w", &specRejected{errors.New("bad")}), http.StatusBadRequest},
		{"server_side", errors.New("disk on fire"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			writeResultError(rec, c.err)
			if rec.Code != c.want {
				t.Errorf("status = %d, want %d", rec.Code, c.want)
			}
		})
	}
}

// TestBadSpecsRejected400 drives the bad-spec space through the real
// /v1/color handler: every malformed spec must come back 400, never 500.
func TestBadSpecsRejected400(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	bad := []MappingSpec{
		{Alg: "color", Levels: 0, M: 3},
		{Alg: "color", Levels: 41, M: 3},
		{Alg: "color", Levels: 12, M: 1},
		{Alg: "color", Levels: 12, M: 6},
		{Alg: "labeltree", Levels: 12, Modules: 2},
		{Alg: "labeltree", Levels: 12, Modules: 1<<16 + 1},
		{Alg: "labeltree", Levels: 12, Modules: 7, Policy: "zigzag"},
		{Alg: "mod", Levels: 12, Modules: 0},
		{Alg: "levelcyclic", Levels: 12, Modules: 1 << 17},
		{Alg: "random", Levels: 23, Modules: 5},
		{Alg: "bogus", Levels: 12, Modules: 5},
		{Alg: "", Levels: 12},
	}
	for _, sp := range bad {
		status := post(t, ts.Client(), ts.URL+"/v1/color", ColorRequest{
			Mapping: sp, Node: &NodeRef{Index: 0, Level: 0},
		}, nil)
		if status != http.StatusBadRequest {
			t.Errorf("spec %+v: status %d, want 400", sp, status)
		}
	}
}

// TestKernelMetricsRecorded checks the serving hot path actually records
// kernel-path batches: an explicit batch and a coalesced singleton both
// tick kernel_batches and the compute histogram, with zero fallbacks for
// registry algs; with the kernel disabled the same traffic lands in
// fallback_batches.
func TestKernelMetricsRecorded(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	nodes := make([]NodeRef, 64)
	for i := range nodes {
		nodes[i] = NodeRef{Index: int64(i), Level: 10}
	}
	if status := post(t, ts.Client(), ts.URL+"/v1/color", ColorRequest{
		Mapping: MappingSpec{Alg: "color", Levels: 12, M: 3}, Nodes: nodes,
	}, nil); status != http.StatusOK {
		t.Fatalf("explicit batch: status %d", status)
	}
	if status := post(t, ts.Client(), ts.URL+"/v1/color", ColorRequest{
		Mapping: modSpec(12, 5), Node: &NodeRef{Index: 3, Level: 4},
	}, nil); status != http.StatusOK {
		t.Fatalf("singleton: status %d", status)
	}
	snap := srv.met.Snapshot()
	if snap.KernelBatches < 2 {
		t.Errorf("kernel_batches = %d, want >= 2", snap.KernelBatches)
	}
	if snap.FallbackBatches != 0 {
		t.Errorf("fallback_batches = %d, want 0 (all registry algs have kernels)", snap.FallbackBatches)
	}
	if snap.BatchComputeNS.Count != snap.KernelBatches {
		t.Errorf("batch_compute_ns count = %d, want %d", snap.BatchComputeNS.Count, snap.KernelBatches)
	}

	// A/B switch: same traffic with the kernel disabled must take the
	// per-node path and say so in the metrics.
	srv2 := New(Config{DisableBatchKernel: true})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if status := post(t, ts2.Client(), ts2.URL+"/v1/color", ColorRequest{
		Mapping: MappingSpec{Alg: "color", Levels: 12, M: 3}, Nodes: nodes,
	}, nil); status != http.StatusOK {
		t.Fatalf("disabled-kernel batch: status %d", status)
	}
	snap2 := srv2.met.Snapshot()
	if snap2.KernelBatches != 0 || snap2.FallbackBatches == 0 {
		t.Errorf("disabled kernel: kernel=%d fallback=%d, want 0/>=1",
			snap2.KernelBatches, snap2.FallbackBatches)
	}
}
