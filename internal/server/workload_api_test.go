// Differential oracle tests for the workload endpoints: every counter a
// /v1/heap/* or /v1/range response reports must equal what the
// in-process simulator (heapsim.Run / rangequery.Run) computes for the
// same inputs on an independently materialized mapping. Also covers the
// per-tenant admission layer: fairness caps, the bounded tenant table,
// and a race hammer over concurrent multi-tenant traffic.
package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/colormap"
	"repro/internal/heapsim"
	"repro/internal/pms"
	"repro/internal/rangequery"
	"repro/internal/tree"
	"repro/internal/workload"
)

// oracleRange runs one range query in-process and converts it to the
// wire shape for field-by-field comparison.
func oracleRange(sys *pms.System, lo, hi int64) (RangeQueryResult, error) {
	qr, err := rangequery.Run(sys, lo, hi)
	if err != nil {
		return RangeQueryResult{}, err
	}
	return RangeQueryResult{
		Range:     qr.Range,
		Items:     qr.Items,
		Parts:     qr.Parts,
		Subtrees:  qr.Subtrees,
		Cycles:    qr.Cycles,
		Conflicts: qr.Conflicts,
	}, nil
}

// oracleSystem materializes the color mapping through the forward
// construction (Canonical + Color), independent of the server's
// registry/retriever path.
func oracleSystem(t *testing.T, levels, m int) *pms.System {
	t.Helper()
	p, err := colormap.Canonical(levels, m)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := colormap.Color(p)
	if err != nil {
		t.Fatal(err)
	}
	return pms.NewSystem(arr)
}

// checkHeapAgainstOracle replays ops on a fresh oracle system and
// compares every response field.
func checkHeapAgainstOracle(t *testing.T, resp HeapResponse, sys *pms.System, ops []heapsim.Op) {
	t.Helper()
	want, err := heapsim.Run(sys, ops)
	if err != nil {
		t.Fatal(err)
	}
	st := want.Stats
	if resp.Ops != want.Ops {
		t.Errorf("ops = %d, oracle %d", resp.Ops, want.Ops)
	}
	if resp.FinalLen != want.FinalLen {
		t.Errorf("final_len = %d, oracle %d", resp.FinalLen, want.FinalLen)
	}
	if resp.TotalCycles != want.TotalCycles {
		t.Errorf("total_cycles = %d, oracle %d", resp.TotalCycles, want.TotalCycles)
	}
	if resp.Requests != st.Requests {
		t.Errorf("requests = %d, oracle %d", resp.Requests, st.Requests)
	}
	if resp.Conflicts != st.Conflicts {
		t.Errorf("conflicts = %d, oracle %d", resp.Conflicts, st.Conflicts)
	}
	if got, want := resp.CyclesPerOp, want.CyclesPerOp(); got != want {
		t.Errorf("cycles_per_op = %v, oracle %v", got, want)
	}
	if got, want := resp.Utilization, st.Utilization(sys.Mapping().Modules()); got != want {
		t.Errorf("utilization = %v, oracle %v", got, want)
	}
}

func TestHeapRunMatchesOracle(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := MappingSpec{Alg: "color", Levels: 10, M: 3}
	wire := []HeapOpRef{
		{Op: "insert", Key: 50}, {Op: "insert", Key: 20}, {Op: "insert", Key: 90},
		{Op: "decrease-key", Key: 5, Slot: 2},
		{Op: "insert", Key: 70}, {Op: "delete-min"}, {Op: "delete-min"},
		{Op: "insert", Key: 10}, {Op: "delete-min"},
		{Op: "delete-min"}, {Op: "delete-min"}, {Op: "delete-min"}, // last two drain + no-op
	}
	var resp HeapResponse
	if status := post(t, ts.Client(), ts.URL+"/v1/heap/run", HeapRunRequest{Mapping: spec, Ops: wire}, &resp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}

	ops := make([]heapsim.Op, len(wire))
	for i, hr := range wire {
		op, aerr := hr.op()
		if aerr != nil {
			t.Fatalf("op %d: %v", i, aerr)
		}
		ops[i] = op
	}
	checkHeapAgainstOracle(t, resp, oracleSystem(t, spec.Levels, spec.M), ops)

	// The run feeds the domain bound monitor; Theorem 4 must hold.
	snap := srv.Metrics().Snapshot()
	if snap.Domain == nil {
		t.Fatal("no domain snapshot")
	}
	if snap.Domain.BoundChecks == 0 {
		t.Error("heap run performed no bound checks")
	}
	if snap.Domain.BoundViolations != 0 {
		t.Errorf("bound violations = %d, want 0", snap.Domain.BoundViolations)
	}
}

func TestHeapWorkloadMatchesOracle(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	spec := MappingSpec{Alg: "color", Levels: 12, M: 4}
	dists := map[string]workload.Distribution{
		"uniform": workload.Uniform, "zipf": workload.Zipf, "sequential": workload.Sequential,
	}
	for dist, wdist := range dists {
		req := HeapWorkloadRequest{Mapping: spec, N: 500, Dist: dist, Seed: 42}
		var resp HeapResponse
		if status := post(t, ts.Client(), ts.URL+"/v1/heap/workload", req, &resp); status != http.StatusOK {
			t.Fatalf("%s: status %d", dist, status)
		}

		// Regenerate the identical sequence client-side from the wire
		// parameters alone — the endpoint's determinism contract.
		space := tree.New(spec.Levels).Nodes()
		keys, err := workload.NewKeyStream(wdist, space, req.Seed)
		if err != nil {
			t.Fatal(err)
		}
		ops, err := workload.HeapOps(workload.DefaultHeapMix(), req.N, keys, req.Seed)
		if err != nil {
			t.Fatal(err)
		}
		checkHeapAgainstOracle(t, resp, oracleSystem(t, spec.Levels, spec.M), ops)
	}
}

func TestRangeMatchesOracle(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	spec := MappingSpec{Alg: "color", Levels: 10, M: 3}
	ranges := [][2]int64{{0, 0}, {5, 40}, {100, 260}, {1000, 1022}, {0, 1022}}
	var resp RangeResponse
	if status := post(t, ts.Client(), ts.URL+"/v1/range", RangeRequest{Mapping: spec, Ranges: ranges}, &resp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.Results) != len(ranges) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(ranges))
	}

	sys := oracleSystem(t, spec.Levels, spec.M)
	var items, cycles, conflicts int64
	for i, rg := range ranges {
		want, err := oracleRange(sys, rg[0], rg[1])
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Results[i]
		if got != want {
			t.Errorf("range %v: got %+v, oracle %+v", rg, got, want)
		}
		items += want.Items
		cycles += want.Cycles
		conflicts += int64(want.Conflicts)
	}
	if resp.TotalItems != items || resp.TotalCycles != cycles || resp.TotalConflicts != conflicts {
		t.Errorf("totals = (%d,%d,%d), oracle (%d,%d,%d)",
			resp.TotalItems, resp.TotalCycles, resp.TotalConflicts, items, cycles, conflicts)
	}
}

func TestWorkloadEndpointValidation(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxHeapOps: 4, MaxRangeQueries: 2, MaxSimItems: 100}).Handler())
	defer ts.Close()

	spec := MappingSpec{Alg: "color", Levels: 10, M: 3}
	cases := []struct {
		name string
		path string
		body any
	}{
		{"no ops", "/v1/heap/run", HeapRunRequest{Mapping: spec}},
		{"too many ops", "/v1/heap/run", HeapRunRequest{Mapping: spec, Ops: []HeapOpRef{
			{Op: "insert"}, {Op: "insert"}, {Op: "insert"}, {Op: "insert"}, {Op: "insert"}}}},
		{"bad op", "/v1/heap/run", HeapRunRequest{Mapping: spec, Ops: []HeapOpRef{{Op: "pop"}}}},
		{"negative slot", "/v1/heap/run", HeapRunRequest{Mapping: spec, Ops: []HeapOpRef{{Op: "decrease-key", Slot: -1}}}},
		{"bad mapping", "/v1/heap/run", HeapRunRequest{Mapping: MappingSpec{Alg: "nope"}, Ops: []HeapOpRef{{Op: "insert"}}}},
		{"n too small", "/v1/heap/workload", HeapWorkloadRequest{Mapping: spec}},
		{"n too large", "/v1/heap/workload", HeapWorkloadRequest{Mapping: spec, N: 5}},
		{"bad dist", "/v1/heap/workload", HeapWorkloadRequest{Mapping: spec, N: 2, Dist: "pareto"}},
		{"no ranges", "/v1/range", RangeRequest{Mapping: spec}},
		{"too many ranges", "/v1/range", RangeRequest{Mapping: spec, Ranges: [][2]int64{{0, 1}, {0, 1}, {0, 1}}}},
		{"inverted range", "/v1/range", RangeRequest{Mapping: spec, Ranges: [][2]int64{{5, 1}}}},
		{"range beyond tree", "/v1/range", RangeRequest{Mapping: spec, Ranges: [][2]int64{{0, 1 << 20}}}},
		{"items above cap", "/v1/range", RangeRequest{Mapping: spec, Ranges: [][2]int64{{0, 200}}}},
	}
	for _, tc := range cases {
		if status := post(t, ts.Client(), ts.URL+tc.path, tc.body, nil); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
		}
	}
}

func TestTenantSanitize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", anonTenant},
		{"alpha", "alpha"},
		{"Tenant-7_x.y", "Tenant-7_x.y"},
		{"has space", overflowTenant},
		{"evil\"label", overflowTenant},
		{"unicode-é", overflowTenant},
		{"0123456789012345678901234567890123", overflowTenant}, // 34 chars
	}
	for _, tc := range cases {
		if got := sanitizeTenant(tc.in); got != tc.want {
			t.Errorf("sanitizeTenant(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTenantTableBounded(t *testing.T) {
	tt := newTenantTable(3) // room for 2 named tenants + "other"
	a := tt.get("a")
	if tt.get("a") != a {
		t.Fatal("get not idempotent")
	}
	tt.get("b")
	c := tt.get("c") // table full: folds into "other"
	if c != tt.get(overflowTenant) {
		t.Error("overflow tenant not folded into the shared bucket")
	}
	if c == a {
		t.Error("overflow bucket aliased an existing tenant")
	}
	snap := tt.snapshot()
	if len(snap) != 3 {
		t.Fatalf("table grew to %d entries, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Tenant >= snap[i].Tenant {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
}

// TestTenantFairnessCap pins the admission semantics: one tenant at its
// inflight cap is shed with 429 while another tenant is still admitted,
// and the shed requests are attributed to the hot tenant.
func TestTenantFairnessCap(t *testing.T) {
	srv := New(Config{MaxInflight: 16, TenantMaxInflight: 2})

	req := func(tenant string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/v1/color", nil)
		if tenant != "" {
			r.Header.Set(TenantHeader, tenant)
		}
		return r
	}

	rel1, aerr := srv.admit(req("hot"))
	if aerr != nil {
		t.Fatalf("first admit: %v", aerr)
	}
	rel2, aerr := srv.admit(req("hot"))
	if aerr != nil {
		t.Fatalf("second admit: %v", aerr)
	}
	if _, aerr = srv.admit(req("hot")); aerr == nil {
		t.Fatal("third admit above tenant cap succeeded")
	} else if aerr.status != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", aerr.status)
	}
	// A different tenant still gets in: the cap is per tenant.
	relCold, aerr := srv.admit(req("cold"))
	if aerr != nil {
		t.Fatalf("cold tenant blocked by hot tenant's cap: %v", aerr)
	}
	relCold()
	rel1()
	rel2()

	snap := srv.Metrics().Snapshot()
	byName := map[string]TenantSnapshot{}
	for _, tn := range snap.Tenants {
		byName[tn.Tenant] = tn
	}
	hot := byName["hot"]
	if hot.Requests != 3 || hot.Rejected != 1 || hot.Inflight != 0 {
		t.Errorf("hot = %+v, want requests=3 rejected=1 inflight=0", hot)
	}
	cold := byName["cold"]
	if cold.Requests != 1 || cold.Rejected != 0 || cold.Inflight != 0 {
		t.Errorf("cold = %+v, want requests=1 rejected=0 inflight=0", cold)
	}
}

// TestTenantAdmissionHammer races many tenants (more than the table cap)
// through admit/release over real HTTP and checks the books balance and
// no goroutines leak. Run with -race for the full effect.
func TestTenantAdmissionHammer(t *testing.T) {
	srv := New(Config{MaxTenants: 8, TenantMaxInflight: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := runtime.NumGoroutine()
	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body := fmt.Sprintf(`{"mapping":{"alg":"color","levels":8,"m":2},"node":{"index":%d,"level":3}}`, i%8)
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/color", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				// 12 distinct tenants against a table cap of 8: the tail
				// must fold into "other" under concurrent creation.
				req.Header.Set(TenantHeader, fmt.Sprintf("tenant-%02d", (id+i)%12))
				resp, err := ts.Client().Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()

	snap := srv.Metrics().Snapshot()
	if len(snap.Tenants) > 8 {
		t.Errorf("tenant table grew to %d entries above cap 8", len(snap.Tenants))
	}
	var requests, inflight int64
	for _, tn := range snap.Tenants {
		requests += tn.Requests
		inflight += tn.Inflight
	}
	// Everything admitted was released and every request was accounted to
	// some tenant bucket.
	if requests != workers*perWorker {
		t.Errorf("tenant requests = %d, want %d", requests, workers*perWorker)
	}
	if inflight != 0 {
		t.Errorf("tenant inflight = %d after drain, want 0", inflight)
	}
	if snap.Inflight != 0 {
		t.Errorf("global inflight = %d after drain, want 0", snap.Inflight)
	}

	// Goroutine-leak check: allow the handful of idle http keepalive
	// goroutines, but not one per request.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+10 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d", before, runtime.NumGoroutine())
}
