// Resilience tests for the serving layer itself: the graceful-drain
// path must not leak worker or listener goroutines, and the registry's
// LRU eviction must stay panic-free and account bytes exactly under a
// pathological 1-byte budget hammered by concurrent traffic.
package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil"
)

// TestShutdownDrainsWithoutGoroutineLeak serves real HTTP traffic, shuts
// down, and verifies every goroutine the server started (worker pool,
// coalescer flush timers, connection handlers) has exited.
func TestShutdownDrainsWithoutGoroutineLeak(t *testing.T) {
	defer testutil.CheckGoroutines(t)()

	srv := New(Config{Workers: 4, Addr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	transport := &http.Transport{}
	client := &http.Client{Transport: transport, Timeout: 5 * time.Second}

	url := "http://" + srv.Addr() + "/v1/color"
	for i := 0; i < 20; i++ {
		var resp ColorResponse
		status := post(t, client, url, ColorRequest{
			Mapping: modSpec(10, 7),
			Node:    &NodeRef{Index: int64(i % 8), Level: 3},
		}, &resp)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}

	transport.CloseIdleConnections()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestRegistryEvictionRaceHammer pounds /v1/color with many distinct
// mapping specs against a 1-byte cache budget, so every build races an
// eviction of its neighbors. The hammer must finish without panics,
// every shard's byte counter must equal the sum of its surviving
// entries, and the cache must have come back down to at most one entry
// per shard once the traffic stops.
func TestRegistryEvictionRaceHammer(t *testing.T) {
	defer testutil.CheckGoroutines(t)()

	srv := New(Config{Workers: 4, MaxInflight: 1024, CacheBudgetBytes: 1})
	ts := httptest.NewServer(srv.Handler())

	const (
		hammerers = 16
		iters     = 40
		specs     = 24 // distinct cache keys in rotation
	)
	var wg sync.WaitGroup
	for g := 0; g < hammerers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				spec := modSpec(10, 3+(g*iters+i)%specs)
				var resp ColorResponse
				status := post(t, ts.Client(), ts.URL+"/v1/color", ColorRequest{
					Mapping: spec,
					Node:    &NodeRef{Index: int64(i % 4), Level: 2},
				}, &resp)
				if status != http.StatusOK && status != http.StatusTooManyRequests {
					t.Errorf("hammerer %d iter %d: status %d", g, i, status)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	// Per-shard accounting must be exact: the shard byte counter is the
	// sum of its live entries, with no residue from evicted ones.
	var total int64
	var entries int
	for i := range srv.reg.shards {
		sh := &srv.reg.shards[i]
		sh.mu.Lock()
		var sum int64
		for _, e := range sh.items {
			if !e.done() {
				t.Errorf("shard %d: entry %q still in flight after the hammer drained", i, e.key)
			}
			sum += e.bytes
		}
		if sum != sh.bytes {
			t.Errorf("shard %d: byte counter %d but entries sum to %d", i, sh.bytes, sum)
		}
		if len(sh.items) != sh.lru.Len() {
			t.Errorf("shard %d: %d map entries but %d LRU elements", i, len(sh.items), sh.lru.Len())
		}
		total += sh.bytes
		entries += len(sh.items)
		sh.mu.Unlock()
	}
	if total != srv.reg.Bytes() {
		t.Errorf("registry Bytes() = %d, shards sum to %d", srv.reg.Bytes(), total)
	}
	if got := srv.met.registryBytes.Load(); got != total {
		t.Errorf("metrics registryBytes = %d, registry holds %d", got, total)
	}
	// A 1-byte budget means every completed insert evicts all other done
	// entries in its shard: once quiet, at most one survivor per shard.
	if entries > registryShards {
		t.Errorf("%d cached entries after the hammer, want at most %d (one per shard)", entries, registryShards)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDrainRefusesNewWorkButFinishesAdmitted overlaps a shutdown with
// slow in-flight work: admitted requests must complete with 200 while
// new ones are refused, and nothing may leak.
func TestDrainRefusesNewWorkButFinishesAdmitted(t *testing.T) {
	defer testutil.CheckGoroutines(t)()

	gate := make(chan struct{})
	var once sync.Once
	srv := New(Config{
		Workers:    2,
		workerHook: func() { once.Do(func() { <-gate }) },
	})
	ts := httptest.NewServer(srv.Handler())

	done := make(chan int, 1)
	go func() {
		var resp ColorResponse
		done <- post(t, ts.Client(), ts.URL+"/v1/color", ColorRequest{
			Mapping: modSpec(10, 7),
			Node:    &NodeRef{Index: 0, Level: 0},
		}, &resp)
	}()

	// Wait until the slow request holds a worker, then start draining.
	deadline := time.Now().Add(2 * time.Second)
	for srv.met.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// New work is refused while draining.
	for srv.draining.Load() == false {
		time.Sleep(time.Millisecond)
	}
	if status := post(t, ts.Client(), ts.URL+"/v1/color", ColorRequest{
		Mapping: modSpec(10, 7),
		Node:    &NodeRef{Index: 0, Level: 0},
	}, nil); status != http.StatusServiceUnavailable {
		t.Errorf("request during drain got %d, want 503", status)
	}

	close(gate) // release the admitted request
	if status := <-done; status != http.StatusOK {
		t.Errorf("admitted request finished with %d, want 200", status)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("shutdown: %v", err)
	}
	ts.Close()
}
