package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/coloring"
	"repro/internal/colormap"
	"repro/internal/pms"
	"repro/internal/template"
	"repro/internal/tree"
)

// post sends a JSON body and decodes the reply into out (if non-nil),
// returning the status code.
func post(t *testing.T, client *http.Client, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func modSpec(levels, modules int) MappingSpec {
	return MappingSpec{Alg: "mod", Levels: levels, Modules: modules}
}

func TestColorSingleton(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	spec := MappingSpec{Alg: "color", Levels: 16, M: 3}
	p, err := colormap.Canonical(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []tree.Node{tree.V(0, 0), tree.V(5, 3), tree.V(1000, 15)} {
		var resp ColorResponse
		status := post(t, ts.Client(), ts.URL+"/v1/color", ColorRequest{
			Mapping: spec, Node: &NodeRef{Index: n.Index, Level: n.Level},
		}, &resp)
		if status != http.StatusOK {
			t.Fatalf("status %d for %v", status, n)
		}
		want, err := colormap.Retrieve(p, n)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Colors) != 1 || resp.Colors[0] != want {
			t.Errorf("%v: got %v, want [%d]", n, resp.Colors, want)
		}
		if resp.Modules != p.Colors() {
			t.Errorf("modules = %d, want %d", resp.Modules, p.Colors())
		}
	}
}

func TestColorExplicitBatch(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	spec := modSpec(10, 7)
	refs := []NodeRef{{0, 0}, {3, 2}, {100, 8}, {511, 9}}
	var resp ColorResponse
	if status := post(t, ts.Client(), ts.URL+"/v1/color", ColorRequest{Mapping: spec, Nodes: refs}, &resp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	for i, nr := range refs {
		want := int(nr.Node().HeapIndex() % 7)
		if resp.Colors[i] != want {
			t.Errorf("node %v: got %d, want %d", nr, resp.Colors[i], want)
		}
	}
}

func TestColorRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxColorNodes: 4}).Handler())
	defer ts.Close()
	cases := []struct {
		name string
		req  ColorRequest
	}{
		{"no node", ColorRequest{Mapping: modSpec(10, 7)}},
		{"both node and nodes", ColorRequest{Mapping: modSpec(10, 7), Node: &NodeRef{0, 0}, Nodes: []NodeRef{{0, 0}}}},
		{"node outside tree", ColorRequest{Mapping: modSpec(10, 7), Node: &NodeRef{Index: 0, Level: 10}}},
		{"invalid index", ColorRequest{Mapping: modSpec(10, 7), Node: &NodeRef{Index: 9, Level: 2}}},
		{"negative index", ColorRequest{Mapping: modSpec(10, 7), Node: &NodeRef{Index: -1, Level: 2}}},
		{"unknown alg", ColorRequest{Mapping: MappingSpec{Alg: "nope", Levels: 5, Modules: 3}, Node: &NodeRef{0, 0}}},
		{"levels too big", ColorRequest{Mapping: modSpec(63, 7), Node: &NodeRef{0, 0}}},
		{"oversized batch", ColorRequest{Mapping: modSpec(10, 7), Nodes: make([]NodeRef, 5)}},
		{"color m too big", ColorRequest{Mapping: MappingSpec{Alg: "color", Levels: 30, M: 9}, Node: &NodeRef{0, 0}}},
	}
	for _, tc := range cases {
		if status := post(t, ts.Client(), ts.URL+"/v1/color", tc.req, nil); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
		}
	}
}

func TestTemplateCostModes(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	spec := MappingSpec{Alg: "color", Levels: 12, M: 3}
	p, err := colormap.Canonical(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := colormap.Color(p)
	if err != nil {
		t.Fatal(err)
	}

	// Family mode: exact worst case over P(N) must match FamilyCost (and
	// the paper says COLOR is conflict-free on P(N)).
	var fam TemplateCostResponse
	if status := post(t, ts.Client(), ts.URL+"/v1/template-cost", TemplateCostRequest{
		Mapping: spec, Kind: "P", Size: int64(p.BandLevels),
	}, &fam); status != http.StatusOK {
		t.Fatalf("family status %d", status)
	}
	f, err := template.NewFamily(arr.Tree(), template.Path, int64(p.BandLevels))
	if err != nil {
		t.Fatal(err)
	}
	wantCost, _ := coloring.FamilyCost(arr, f)
	if fam.Conflicts != wantCost {
		t.Errorf("family conflicts = %d, want %d", fam.Conflicts, wantCost)
	}
	if fam.Witness == nil {
		t.Error("family mode should include a witness")
	}

	// Instance mode: one subtree instance.
	inst := template.Instance{Kind: template.Subtree, Anchor: tree.V(3, 4), Size: 7}
	var one TemplateCostResponse
	if status := post(t, ts.Client(), ts.URL+"/v1/template-cost", TemplateCostRequest{
		Mapping: spec, Kind: "S", Size: 7, Anchor: &NodeRef{Index: 3, Level: 4},
	}, &one); status != http.StatusOK {
		t.Fatalf("instance status %d", status)
	}
	if want := coloring.InstanceConflicts(arr, inst); one.Conflicts != want {
		t.Errorf("instance conflicts = %d, want %d", one.Conflicts, want)
	}

	// Composite mode: two disjoint parts.
	comp := template.Composite{Parts: []template.Instance{
		{Kind: template.Subtree, Anchor: tree.V(0, 5), Size: 7},
		{Kind: template.Level, Anchor: tree.V(100, 9), Size: 16},
	}}
	var cr TemplateCostResponse
	if status := post(t, ts.Client(), ts.URL+"/v1/template-cost", TemplateCostRequest{
		Mapping: spec,
		Parts: []InstanceRef{
			{Kind: "S", Anchor: NodeRef{0, 5}, Size: 7},
			{Kind: "L", Anchor: NodeRef{100, 9}, Size: 16},
		},
	}, &cr); status != http.StatusOK {
		t.Fatalf("composite status %d", status)
	}
	if want := coloring.CompositeConflicts(arr, comp); cr.Conflicts != want {
		t.Errorf("composite conflicts = %d, want %d", cr.Conflicts, want)
	}
	if cr.Items != comp.Size() {
		t.Errorf("composite items = %d, want %d", cr.Items, comp.Size())
	}

	// Family mode above the enumeration cap is a 400, not a hung worker.
	if status := post(t, ts.Client(), ts.URL+"/v1/template-cost", TemplateCostRequest{
		Mapping: MappingSpec{Alg: "color", Levels: 30, M: 3}, Kind: "P", Size: 6,
	}, nil); status != http.StatusBadRequest {
		t.Errorf("family above cap: status %d, want 400", status)
	}

	// Overlapping composite parts violate C(D,c) and are rejected.
	if status := post(t, ts.Client(), ts.URL+"/v1/template-cost", TemplateCostRequest{
		Mapping: spec,
		Parts: []InstanceRef{
			{Kind: "S", Anchor: NodeRef{0, 0}, Size: 7},
			{Kind: "P", Anchor: NodeRef{0, 1}, Size: 2},
		},
	}, nil); status != http.StatusBadRequest {
		t.Errorf("overlapping parts: status %d, want 400", status)
	}
}

func TestSimulateMatchesDirectReplay(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	spec := modSpec(10, 7)
	batches := [][]int64{{0, 1, 2, 7, 14}, {3, 3, 3}, {1022, 0}}

	var resp SimulateResponse
	if status := post(t, ts.Client(), ts.URL+"/v1/simulate", SimulateRequest{
		Mapping: spec, Batches: batches,
	}, &resp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}

	m, _, err := spec.build()
	if err != nil {
		t.Fatal(err)
	}
	sys := pms.NewSystem(m)
	for _, idxs := range batches {
		nodes := make([]tree.Node, len(idxs))
		for i, h := range idxs {
			nodes[i] = tree.FromHeapIndex(h)
		}
		sys.SubmitDrain(nodes)
	}
	st := sys.Stats()
	if resp.Cycles != st.Cycles || resp.Conflicts != st.Conflicts || resp.Requests != st.Requests {
		t.Errorf("got %+v, want cycles=%d conflicts=%d requests=%d", resp, st.Cycles, st.Conflicts, st.Requests)
	}

	// Out-of-range heap index is a 400.
	if status := post(t, ts.Client(), ts.URL+"/v1/simulate", SimulateRequest{
		Mapping: spec, Batches: [][]int64{{1 << 40}},
	}, nil); status != http.StatusBadRequest {
		t.Errorf("oversized index: status %d, want 400", status)
	}
}

// TestCoalescing proves concurrent singleton lookups share batches: with
// the worker gated, requests pile into the flush window and the server
// must answer all of them from strictly fewer flushed batches.
func TestCoalescing(t *testing.T) {
	gate := make(chan struct{})
	srv := New(Config{
		Workers:     1,
		FlushWindow: 2 * time.Millisecond,
		MaxBatch:    64,
		workerHook:  func() { <-gate },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 24
	spec := modSpec(12, 5)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			n := tree.FromHeapIndex(int64(id * 31 % 4095))
			var resp ColorResponse
			status := post(t, ts.Client(), ts.URL+"/v1/color", ColorRequest{
				Mapping: spec, Node: &NodeRef{Index: n.Index, Level: n.Level},
			}, &resp)
			if status != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d", id, status)
				return
			}
			if want := int(n.HeapIndex() % 5); resp.Colors[0] != want {
				errs <- fmt.Errorf("client %d: color %d, want %d", id, resp.Colors[0], want)
			}
		}(c)
	}
	// Let requests accumulate in the window before releasing the worker.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := srv.Metrics().Snapshot()
	if snap.BatchesFlushed >= clients {
		t.Errorf("batches_flushed = %d, want < %d (no coalescing happened)", snap.BatchesFlushed, clients)
	}
	if snap.CoalescedJobs == 0 {
		t.Error("coalesced_jobs = 0, want > 0")
	}
	if snap.Color.Requests != clients {
		t.Errorf("color requests = %d, want %d", snap.Color.Requests, clients)
	}
}

// TestBackpressure saturates the admission limit and checks that excess
// requests get 429 + Retry-After while admitted ones still complete.
func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	const maxInflight = 4
	srv := New(Config{
		Workers:     1,
		MaxInflight: maxInflight,
		FlushWindow: -1, // no coalescing: one request = one task
		workerHook:  func() { <-gate },
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := modSpec(10, 3)
	body, _ := json.Marshal(ColorRequest{Mapping: spec, Node: &NodeRef{Index: 2, Level: 2}})

	// Fill the admission limit with requests the gated worker cannot finish.
	statuses := make(chan int, maxInflight)
	var admitted sync.WaitGroup
	for i := 0; i < maxInflight; i++ {
		admitted.Add(1)
		go func() {
			defer admitted.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/color", "application/json", bytes.NewReader(body))
			if err != nil {
				statuses <- -1
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	// Wait until all four are admitted (inflight gauge reaches the limit).
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Snapshot().Inflight < maxInflight {
		if time.Now().After(deadline) {
			t.Fatal("inflight never reached the admission limit")
		}
		time.Sleep(time.Millisecond)
	}

	// The saturated server must shed further load with 429 + Retry-After.
	resp, err := ts.Client().Post(ts.URL+"/v1/color", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Releasing the worker completes every admitted request.
	close(gate)
	admitted.Wait()
	close(statuses)
	for status := range statuses {
		if status != http.StatusOK {
			t.Errorf("admitted request finished with %d, want 200", status)
		}
	}
	if rej := srv.Metrics().Snapshot().Rejected429; rej < 1 {
		t.Errorf("rejected_429 = %d, want ≥ 1", rej)
	}
}

// TestGracefulShutdownDrains verifies that Shutdown completes every
// accepted request while refusing new ones.
func TestGracefulShutdownDrains(t *testing.T) {
	gate := make(chan struct{})
	srv := New(Config{
		Workers:     2,
		MaxInflight: 8,
		FlushWindow: -1,
		Addr:        "127.0.0.1:0",
		workerHook:  func() { <-gate },
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	url := "http://" + srv.Addr() + "/v1/color"
	spec := modSpec(10, 3)
	body, _ := json.Marshal(ColorRequest{Mapping: spec, Node: &NodeRef{Index: 1, Level: 1}})

	const accepted = 4
	statuses := make(chan int, accepted)
	var wg sync.WaitGroup
	for i := 0; i < accepted; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				statuses <- -1
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().Snapshot().Inflight < accepted {
		if time.Now().After(deadline) {
			t.Fatal("requests were not admitted in time")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Draining: give Shutdown a moment to set the flag, then release the
	// workers so the accepted requests can finish.
	for !srv.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	close(gate)

	wg.Wait()
	close(statuses)
	for status := range statuses {
		if status != http.StatusOK {
			t.Errorf("accepted request finished with %d, want 200", status)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("shutdown: %v", err)
	}

	// The listener is closed: new requests must fail.
	if _, err := http.Post(url, "application/json", bytes.NewReader(body)); err == nil {
		t.Error("request after shutdown unexpectedly succeeded")
	}
}

func TestDebugVarsAndHealth(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	if status := post(t, ts.Client(), ts.URL+"/v1/color", ColorRequest{
		Mapping: modSpec(8, 3), Node: &NodeRef{Index: 0, Level: 0},
	}, nil); status != http.StatusOK {
		t.Fatalf("color status %d", status)
	}

	resp, err := ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Color.Requests != 1 {
		t.Errorf("color requests = %d, want 1", snap.Color.Requests)
	}
	if snap.RegistryMisses != 1 {
		t.Errorf("registry misses = %d, want 1", snap.RegistryMisses)
	}

	hr, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", hr.StatusCode)
	}

	pr, err := ts.Client().Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Body.Close()
	if pr.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", pr.StatusCode)
	}
}

func TestDecodeRejectsMalformedBodies(t *testing.T) {
	ts := httptest.NewServer(New(Config{MaxBodyBytes: 1 << 12}).Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", "", http.StatusBadRequest},
		{"not json", "hello", http.StatusBadRequest},
		{"unknown field", `{"mapping":{"alg":"mod","levels":5,"modules":3},"nodee":{}}`, http.StatusBadRequest},
		{"overflow index", `{"mapping":{"alg":"mod","levels":5,"modules":3},"node":{"index":99999999999999999999999999,"level":1}}`, http.StatusBadRequest},
		{"trailing garbage", `{"mapping":{"alg":"mod","levels":5,"modules":3},"node":{"index":0,"level":0}} extra`, http.StatusBadRequest},
		{"huge body", `{"mapping":{"alg":"mod","levels":5,"modules":3},"node":{"index":0,"level":0},"pad":"` + strings.Repeat("x", 1<<13) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/color", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}
