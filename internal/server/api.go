// HTTP wire types for the pmsd serving layer: mapping specs, node and
// template references, and the strict JSON decoding shared by every
// endpoint. All request validation lives here, before any work is
// admitted to the worker pool, so malformed traffic is rejected with a
// 4xx without consuming queue capacity.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/baseline"
	"repro/internal/coloring"
	"repro/internal/colormap"
	"repro/internal/labeltree"
	"repro/internal/obsv"
	"repro/internal/template"
	"repro/internal/tree"
)

// Resource ceilings for lazily materialized mappings. COLOR's retriever
// table is O(2^N) with N = 2^(m-1)+m-1, so m is capped where the table
// stays in the tens of megabytes; RANDOM materializes the whole tree.
const (
	maxSpecLevels   = 40      // arithmetic mappings: no per-node state
	maxColorM       = 5       // N = 20 → 2^20-entry retriever table
	minColorM       = 2       // canonical parameters need m ≥ 2
	maxSpecModules  = 1 << 16 // labeltree micro table stays tiny
	maxRandomLevels = 22      // 2^22 × 4 B ≈ 16 MiB dense array
)

// specAlgs is the closed list of registry algorithms. Validate, Key and
// build must agree on it exactly — the drift test locks the three
// together, so an alg added to one surface cannot silently pass (or
// poison the cache) through another.
var specAlgs = []string{"color", "labeltree", "mod", "levelcyclic", "random"}

// MappingSpec identifies one mapping instance in the registry. It is the
// cache key of the serving layer: requests carrying the same spec share
// one lazily built Retriever / Mapping.
type MappingSpec struct {
	// Alg selects the algorithm: color | labeltree | mod | levelcyclic | random.
	Alg string `json:"alg"`
	// Levels is the tree height H (number of levels).
	Levels int `json:"levels"`
	// M is the canonical COLOR exponent (modules = 2^m - 1); color only.
	M int `json:"m,omitempty"`
	// Modules is the module count for labeltree/mod/levelcyclic/random.
	Modules int `json:"modules,omitempty"`
	// Seed seeds the random baseline mapping.
	Seed int64 `json:"seed,omitempty"`
	// Policy selects the labeltree MACRO-LABEL policy: band-cyclic | balanced.
	Policy string `json:"policy,omitempty"`
}

// Validate checks the spec against the serving resource ceilings. It is
// called before admission, so invalid specs cost no queue slot.
func (sp MappingSpec) Validate() error {
	if sp.Levels < 1 || sp.Levels > maxSpecLevels {
		return fmt.Errorf("levels %d out of range [1,%d]", sp.Levels, maxSpecLevels)
	}
	switch sp.Alg {
	case "color":
		if sp.M < minColorM || sp.M > maxColorM {
			return fmt.Errorf("color exponent m %d out of range [%d,%d]", sp.M, minColorM, maxColorM)
		}
		if _, err := colormap.Canonical(sp.Levels, sp.M); err != nil {
			return err
		}
	case "labeltree":
		if sp.Modules < 3 || sp.Modules > maxSpecModules {
			return fmt.Errorf("labeltree modules %d out of range [3,%d]", sp.Modules, maxSpecModules)
		}
		switch sp.Policy {
		case "", "band-cyclic", "balanced":
		default:
			return fmt.Errorf("unknown labeltree policy %q", sp.Policy)
		}
		if _, err := labeltree.NewParams(sp.Levels, sp.Modules); err != nil {
			return err
		}
	case "mod", "levelcyclic":
		if sp.Modules < 1 || sp.Modules > maxSpecModules {
			return fmt.Errorf("%s modules %d out of range [1,%d]", sp.Alg, sp.Modules, maxSpecModules)
		}
	case "random":
		if sp.Modules < 1 || sp.Modules > maxSpecModules {
			return fmt.Errorf("random modules %d out of range [1,%d]", sp.Modules, maxSpecModules)
		}
		if sp.Levels > maxRandomLevels {
			return fmt.Errorf("random levels %d above materialization cap %d", sp.Levels, maxRandomLevels)
		}
	case "":
		return errors.New("missing mapping.alg")
	default:
		return fmt.Errorf("unknown mapping alg %q", sp.Alg)
	}
	return nil
}

// keyCache memoizes MappingSpec.Key: the canonical key is formatted on
// every serving request (registry resolve, flight-recorder events) and
// the Sprintf allocations feed GC pressure on the hot path. The cache
// is bounded — past keyCacheMax distinct specs, new ones format
// directly, so a spec-churning client cannot grow the map.
var (
	keyCache     sync.Map // MappingSpec -> string
	keyCacheSize atomic.Int64
)

const keyCacheMax = 512

// Key returns the canonical registry key. Fields irrelevant to the chosen
// algorithm are normalized away so equivalent specs share a cache entry.
func (sp MappingSpec) Key() string {
	if v, ok := keyCache.Load(sp); ok {
		return v.(string)
	}
	k := sp.formatKey()
	if keyCacheSize.Load() < keyCacheMax {
		if _, loaded := keyCache.LoadOrStore(sp, k); !loaded {
			keyCacheSize.Add(1)
		}
	}
	return k
}

func (sp MappingSpec) formatKey() string {
	switch sp.Alg {
	case "color":
		return fmt.Sprintf("color/H=%d/m=%d", sp.Levels, sp.M)
	case "labeltree":
		policy := sp.Policy
		if policy == "" {
			policy = "band-cyclic"
		}
		return fmt.Sprintf("labeltree/H=%d/M=%d/%s", sp.Levels, sp.Modules, policy)
	case "random":
		return fmt.Sprintf("random/H=%d/M=%d/seed=%d", sp.Levels, sp.Modules, sp.Seed)
	case "mod", "levelcyclic":
		return fmt.Sprintf("%s/H=%d/M=%d", sp.Alg, sp.Levels, sp.Modules)
	default:
		// Unknown algs never reach the registry (Validate rejects them up
		// front); the sentinel prefix keeps a validator/key drift from
		// minting a valid-looking, cacheable key.
		return "!invalid/" + sp.Alg
	}
}

// specRejected marks a registry build failure caused by the spec itself
// rather than server state. Validate is meant to reject these before
// admission; if one slips through (validator/build drift), the serving
// layer still answers 400, never a 500 for a request-shaped problem.
type specRejected struct{ err error }

func (e *specRejected) Error() string { return e.err.Error() }
func (e *specRejected) Unwrap() error { return e.err }

// sizeOf returns the mapping's measured resident size when it reports
// one, falling back to a fixed overhead for the closed-form mappings
// that keep no per-node state.
func sizeOf(m coloring.Mapping) int64 {
	if s, ok := m.(coloring.Sized); ok {
		return s.SizeBytes()
	}
	return 64
}

// build materializes the mapping and measures its resident size for the
// registry's byte budget. Sizes come from the mappings' own SizeBytes
// (live table lengths), not parameter-derived estimates — the
// size-accounting test pins the two against each other so LRU eviction
// stays honest. Validate must have succeeded; any error here is wrapped
// as specRejected so a drift surfaces as a 400.
func (sp MappingSpec) build() (coloring.Mapping, int64, error) {
	switch sp.Alg {
	case "color":
		p, err := colormap.Canonical(sp.Levels, sp.M)
		if err != nil {
			return nil, 0, &specRejected{err}
		}
		r, err := colormap.NewRetriever(p)
		if err != nil {
			return nil, 0, &specRejected{err}
		}
		m := r.Mapping()
		return m, sizeOf(m), nil
	case "labeltree":
		policy := labeltree.BandCyclic
		if sp.Policy == "balanced" {
			policy = labeltree.Balanced
		}
		lt, err := labeltree.NewWithPolicy(sp.Levels, sp.Modules, policy)
		if err != nil {
			return nil, 0, &specRejected{err}
		}
		return lt, sizeOf(lt), nil
	case "mod":
		m := baseline.Modulo(tree.New(sp.Levels), sp.Modules)
		return m, sizeOf(m), nil
	case "levelcyclic":
		m := baseline.LevelCyclic(tree.New(sp.Levels), sp.Modules)
		return m, sizeOf(m), nil
	case "random":
		m := baseline.Random(tree.New(sp.Levels), sp.Modules, sp.Seed)
		return m, sizeOf(m), nil
	default:
		return nil, 0, &specRejected{fmt.Errorf("unknown mapping alg %q", sp.Alg)}
	}
}

// NodeRef addresses a tree node as (index, level) on the wire.
type NodeRef struct {
	Index int64 `json:"index"`
	Level int   `json:"level"`
}

// Node converts the reference to the internal node type.
func (nr NodeRef) Node() tree.Node { return tree.V(nr.Index, nr.Level) }

// validateNode checks the node against the spec's tree.
func (nr NodeRef) validate(levels int) error {
	n := nr.Node()
	if !n.Valid() || n.Level >= levels {
		return fmt.Errorf("node %v outside %d-level tree", n, levels)
	}
	return nil
}

// ColorRequest asks for the module of one node (Node) or a batch (Nodes).
// Exactly one of the two must be set. Singleton requests are eligible for
// server-side coalescing; explicit batches run as one worker task.
type ColorRequest struct {
	Mapping MappingSpec `json:"mapping"`
	Node    *NodeRef    `json:"node,omitempty"`
	Nodes   []NodeRef   `json:"nodes,omitempty"`
}

// ColorResponse carries the module assignments, in request order.
type ColorResponse struct {
	Modules int   `json:"modules"` // module count of the mapping
	Colors  []int `json:"colors"`  // one module id per requested node
}

// InstanceRef is an elementary template instance on the wire.
type InstanceRef struct {
	Kind   string  `json:"kind"` // S | L | P
	Anchor NodeRef `json:"anchor"`
	Size   int64   `json:"size"`
}

// instance converts the reference, validating the kind.
func (ir InstanceRef) instance() (template.Instance, error) {
	var kind template.Kind
	switch ir.Kind {
	case "S":
		kind = template.Subtree
	case "L":
		kind = template.Level
	case "P":
		kind = template.Path
	default:
		return template.Instance{}, fmt.Errorf("unknown template kind %q (want S, L or P)", ir.Kind)
	}
	return template.Instance{Kind: kind, Anchor: ir.Anchor.Node(), Size: ir.Size}, nil
}

// TemplateCostRequest evaluates template conflicts under a mapping, in one
// of three modes:
//
//   - Parts set: conflicts of the composite instance C(D,c) = ⊎ Parts;
//   - Anchor set: conflicts of the single elementary instance
//     (Kind, Anchor, Size);
//   - neither: exact worst case over the whole family of (Kind, Size)
//     instances — bounded by the server's family-levels cap, since it
//     enumerates every instance of the tree.
type TemplateCostRequest struct {
	Mapping MappingSpec   `json:"mapping"`
	Kind    string        `json:"kind,omitempty"`
	Size    int64         `json:"size,omitempty"`
	Anchor  *NodeRef      `json:"anchor,omitempty"`
	Parts   []InstanceRef `json:"parts,omitempty"`
}

// TemplateCostResponse reports the conflict count; for family mode the
// witness instance attaining the worst case is included.
type TemplateCostResponse struct {
	Conflicts int          `json:"conflicts"`
	Items     int64        `json:"items"`             // nodes accessed by the costed instance(s)
	Witness   *InstanceRef `json:"witness,omitempty"` // family mode only
}

// SimulateRequest replays a bounded trace — batches of heap (BFS) node
// indices — through the parallel memory system simulator.
type SimulateRequest struct {
	Mapping MappingSpec `json:"mapping"`
	Batches [][]int64   `json:"batches"`
}

// SimulateResponse summarizes the replay.
type SimulateResponse struct {
	Batches     int64   `json:"batches"`
	Requests    int64   `json:"requests"`
	Cycles      int64   `json:"cycles"`
	Conflicts   int64   `json:"conflicts"`
	MaxQueue    int     `json:"max_queue"`
	Utilization float64 `json:"utilization"`
	// IdleSteps counts Step calls on an idle system. The SubmitDrain
	// replay never steps idle, so it is 0 today, but the field is carried
	// so the wire format matches pms.Stats rather than silently dropping
	// a counter.
	IdleSteps int64 `json:"idle_steps"`
}

// ErrorResponse is the JSON body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// apiError carries an HTTP status with a client-facing message.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// decodeJSON strictly decodes one JSON value from the request body:
// unknown fields, trailing garbage, numeric overflow and bodies above
// maxBytes are all 4xx errors, never panics — the decode fuzz test locks
// this in.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) *apiError {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &apiError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body above %d bytes", maxBytes)}
		}
		return badRequest("malformed JSON: %v", err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

// writeJSON writes a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// clientInfoFromHeaders parses the X-Client-* attempt metadata a
// resilient client stamps on each attempt, so server traces join up
// with the client's retry/hedge schedule under one request ID. Absent
// or malformed headers yield the zero ClientInfo, which the trace
// layer treats as "no client metadata".
func clientInfoFromHeaders(h http.Header) obsv.ClientInfo {
	attempt, err := strconv.Atoi(h.Get(obsv.HeaderClientAttempt))
	if err != nil || attempt <= 0 {
		return obsv.ClientInfo{}
	}
	elapsed, _ := strconv.ParseInt(h.Get(obsv.HeaderClientElapsedUS), 10, 64)
	return obsv.ClientInfo{
		Attempt:   attempt,
		ElapsedUS: elapsed,
		Hedge:     h.Get(obsv.HeaderClientHedge) == "1",
	}
}

// writeError writes the error body; 429s additionally advertise a
// Retry-After so well-behaved clients back off.
func writeError(w http.ResponseWriter, err *apiError) {
	if err.status == http.StatusTooManyRequests || err.status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, err.status, ErrorResponse{Error: err.msg})
}
