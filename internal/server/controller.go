// Adaptive mapping controller wiring: the mechanics half of
// internal/controller's policy loop. The server side owns
//
//   - per-requested-spec sample reservoirs fed from the template hot
//     paths (bounded rings, stride-sampled so the recording cost on a
//     request is a counter increment most of the time);
//   - candidate enumeration: the requested spec plus every paper
//     mapping that serves the same module count at the same height;
//   - shadow materialization with a small cache, so a tick prices
//     candidates without charging the serving registry's byte budget;
//   - the migration mechanics: Registry.Migrate under the single-flight
//     window, plus persisting the decision into the mapstore manifest so
//     a -store-warm restart re-serves the migrated mapping;
//   - the tick loop and the /debug/vars + /metrics status surface.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coloring"
	ctl "repro/internal/controller"
	"repro/internal/flightrec"
	dm "repro/internal/metrics"
	"repro/internal/obsv"
	"repro/internal/template"
)

// EffectiveMappingHeader is set on responses whose requested mapping was
// redirected by a controller migration; its value is the served key.
const EffectiveMappingHeader = "X-Effective-Mapping"

const (
	// samplerCapacity bounds one spec's reservoir ring.
	samplerCapacity = 512
	// maxSamplers bounds the reservoir table like the per-spec metrics
	// table; specs beyond it are simply not policy-managed.
	maxSamplers = 64
	// shadowCacheMax bounds the shadow mapping cache; the cache is
	// cleared wholesale when full (candidate sets are tiny and rebuilds
	// are off the hot path).
	shadowCacheMax = 16
)

// specSampler is one requested spec's reservoir: a bounded ring of
// recent template instances, refreshed by overwrite so the controller
// replays a sliding window of live traffic rather than startup history.
type specSampler struct {
	spec   MappingSpec // requested (validated) spec
	stride int64
	tick   atomic.Int64

	mu   sync.Mutex
	ring []template.Instance
	next int
}

func (sp *specSampler) offer(in template.Instance) {
	if sp.stride > 1 && sp.tick.Add(1)%sp.stride != 0 {
		return
	}
	sp.mu.Lock()
	if len(sp.ring) < samplerCapacity {
		sp.ring = append(sp.ring, in)
	} else {
		sp.ring[sp.next] = in
		sp.next = (sp.next + 1) % samplerCapacity
	}
	sp.mu.Unlock()
}

func (sp *specSampler) snapshot() []template.Instance {
	sp.mu.Lock()
	out := make([]template.Instance, len(sp.ring))
	copy(out, sp.ring)
	sp.mu.Unlock()
	return out
}

// samplerTable maps requested spec keys to reservoirs. It is bounded:
// once full, new specs are not tracked (and so never policy-managed).
type samplerTable struct {
	stride int64

	mu sync.RWMutex
	m  map[string]*specSampler
}

func (t *samplerTable) get(spec MappingSpec) *specSampler {
	key := spec.Key()
	t.mu.RLock()
	sp := t.m[key]
	t.mu.RUnlock()
	if sp != nil {
		return sp
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp = t.m[key]; sp != nil {
		return sp
	}
	if len(t.m) >= maxSamplers {
		return nil
	}
	sp = &specSampler{spec: spec, stride: t.stride}
	t.m[key] = sp
	return sp
}

func (t *samplerTable) lookup(key string) *specSampler {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[key]
}

// sample offers one observed template instance to the requested spec's
// reservoir. No-op when the controller is off.
func (s *Server) sample(spec MappingSpec, in template.Instance) {
	if s.ctl == nil {
		return
	}
	if sp := s.ctl.samplers.get(spec); sp != nil {
		sp.offer(in)
	}
}

// resolveSpec follows a controller migration for a validated client
// spec. When the served mapping differs from the requested one the
// response advertises it, so probes and clients can observe the switch.
// The requested/effective pair is also stamped onto the request's trace
// and flight-recorder scratch, so forensics can attribute by the
// mapping actually served.
func (s *Server) resolveSpec(w http.ResponseWriter, r *http.Request, spec MappingSpec) MappingSpec {
	eff := s.reg.Resolve(spec)
	if eff != spec {
		w.Header().Set(EffectiveMappingHeader, eff.Key())
	}
	if tr := obsv.FromContext(r.Context()); tr != nil {
		tr.SetMapping(eff.Key())
	}
	if fs := flightFromContext(r.Context()); fs != nil {
		fs.requested = spec.Key()
		fs.effective = eff.Key()
	}
	return eff
}

// serverController bundles the controller's server-side state.
type serverController struct {
	s        *Server
	ctrl     *ctl.Controller
	interval time.Duration
	samplers samplerTable

	shadowMu    sync.Mutex
	shadowSpecs map[string]MappingSpec
	shadowMaps  map[string]coloring.Mapping

	status ctrlStatus

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// ctrlStatus is the last-event-per-spec surface behind /debug/vars and
// the controller gauges.
type ctrlStatus struct {
	mu      sync.Mutex
	entries map[string]*ctrlEntryStatus
}

type ctrlEntryStatus struct {
	effective  string
	lastAction string
	lastReason string
	scores     map[string]float64 // candidate key → per-sample shadow cost
}

func newServerController(s *Server) *serverController {
	cfg := s.cfg
	stride := int64(1)
	if cfg.ShadowSampleRate > 0 && cfg.ShadowSampleRate < 1 {
		stride = int64(1/cfg.ShadowSampleRate + 0.5)
		if stride < 1 {
			stride = 1
		}
	}
	c := &serverController{
		s:           s,
		interval:    cfg.ControllerInterval,
		samplers:    samplerTable{stride: stride, m: make(map[string]*specSampler)},
		shadowSpecs: make(map[string]MappingSpec),
		shadowMaps:  make(map[string]coloring.Mapping),
		status:      ctrlStatus{entries: make(map[string]*ctrlEntryStatus)},
		stop:        make(chan struct{}),
	}
	c.ctrl = ctl.New(ctl.Config{
		MinDwell:       cfg.ControllerMinDwell,
		MinSamples:     cfg.ControllerMinSamples,
		MinImprovement: cfg.ControllerMinImprovement,
	}, ctrlHost{c})
	return c
}

func (c *serverController) start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case now := <-t.C:
				c.ctrl.Tick(now)
			}
		}
	}()
}

func (c *serverController) stopLoop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// ControllerTick runs one policy evaluation synchronously and returns
// the number of migrations performed. Benchmarks and the smoke probe use
// it to drive the controller without waiting out the ticker.
func (s *Server) ControllerTick(now time.Time) int {
	if s.ctl == nil {
		return 0
	}
	return s.ctl.ctrl.Tick(now)
}

// ctrlHost implements controller.Host over the serving layer.
type ctrlHost struct{ c *serverController }

func (h ctrlHost) Entries() []ctl.Entry {
	c := h.c
	c.samplers.mu.RLock()
	specs := make([]MappingSpec, 0, len(c.samplers.m))
	for _, sp := range c.samplers.m {
		specs = append(specs, sp.spec)
	}
	c.samplers.mu.RUnlock()
	entries := make([]ctl.Entry, 0, len(specs))
	for _, sp := range specs {
		entries = append(entries, ctl.Entry{
			Key:       sp.Key(),
			Effective: c.s.reg.Resolve(sp).Key(),
			Levels:    sp.Levels,
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return entries
}

func (h ctrlHost) Mix(key string) (obs, conf [dm.NumFamilies]int64, ok bool) {
	return h.c.s.dom.SpecCounters(key)
}

func (h ctrlHost) Samples(key string) []template.Instance {
	sp := h.c.samplers.lookup(key)
	if sp == nil {
		return nil
	}
	return sp.snapshot()
}

func (h ctrlHost) Candidates(e ctl.Entry) []ctl.Candidate {
	sp := h.c.samplers.lookup(e.Key)
	if sp == nil {
		return nil
	}
	specs := candidateSpecs(sp.spec)
	out := make([]ctl.Candidate, 0, len(specs))
	h.c.shadowMu.Lock()
	for _, cs := range specs {
		key := cs.Key()
		h.c.shadowSpecs[key] = cs
		out = append(out, ctl.Candidate{Key: key, Alg: cs.Alg, M: boundM(cs), Levels: cs.Levels})
	}
	h.c.shadowMu.Unlock()
	return out
}

func (h ctrlHost) Shadow(cand ctl.Candidate) (coloring.Mapping, error) {
	c := h.c
	c.shadowMu.Lock()
	if m := c.shadowMaps[cand.Key]; m != nil {
		c.shadowMu.Unlock()
		return m, nil
	}
	sp, ok := c.shadowSpecs[cand.Key]
	c.shadowMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("controller: no spec registered for candidate %q", cand.Key)
	}
	m, _, err := sp.build()
	if err != nil {
		return nil, err
	}
	c.shadowMu.Lock()
	if len(c.shadowMaps) >= shadowCacheMax {
		c.shadowMaps = make(map[string]coloring.Mapping)
	}
	c.shadowMaps[cand.Key] = m
	c.shadowMu.Unlock()
	return m, nil
}

func (h ctrlHost) Migrate(e ctl.Entry, cand ctl.Candidate, m coloring.Mapping) error {
	c := h.c
	c.shadowMu.Lock()
	spec, ok := c.shadowSpecs[cand.Key]
	c.shadowMu.Unlock()
	if !ok {
		return fmt.Errorf("controller: no spec registered for candidate %q", cand.Key)
	}
	if _, err := c.s.reg.Migrate(e.Key, spec, m); err != nil {
		return err
	}
	c.s.persistDecision(e.Key, spec)
	return nil
}

func (h ctrlHost) Event(ev ctl.Event) {
	met := h.c.s.met
	met.controllerDecisions.Add(1)
	met.controllerShadowEvals.Add(int64(len(ev.Scores)))
	if ev.Action == ctl.ActionMigrate {
		met.controllerMigrations.Add(1)
	}
	h.c.s.fr.RecordDecision(flightrec.Decision{
		TS:     h.c.s.cfg.flightNow().UnixMicro(),
		Spec:   ev.Key,
		Action: ev.Action,
		From:   ev.From,
		To:     ev.To,
		Reason: ev.Reason,
	})

	st := &h.c.status
	st.mu.Lock()
	en := st.entries[ev.Key]
	if en == nil {
		en = &ctrlEntryStatus{}
		st.entries[ev.Key] = en
	}
	en.effective = ev.From
	if ev.Action == ctl.ActionMigrate {
		en.effective = ev.To
	}
	en.lastAction = ev.Action
	en.lastReason = ev.Reason
	if len(ev.Scores) > 0 {
		en.scores = make(map[string]float64, len(ev.Scores))
		for _, sc := range ev.Scores {
			en.scores[sc.Candidate.Key] = sc.PerSample
		}
	}
	st.mu.Unlock()
}

// persistDecision records (or clears, when the effective spec equals the
// requested one) a migration in the mapstore manifest, so a -store-warm
// restart re-applies it before serving traffic.
func (s *Server) persistDecision(fromKey string, eff MappingSpec) {
	if s.cfg.Store == nil {
		return
	}
	if eff.Key() == fromKey {
		_ = s.cfg.Store.SetDecision(fromKey, "")
		return
	}
	raw, err := json.Marshal(eff)
	if err != nil {
		return
	}
	_ = s.cfg.Store.SetDecision(fromKey, string(raw))
}

// candidateSpecs enumerates the mappings a requested spec may migrate
// between: the spec itself plus every paper mapping serving the same
// module count at the same height. COLOR only exists at M = 2^m - 1
// modules, so it is offered only when the module counts line up exactly —
// a migration must never change the module count the client provisioned.
func candidateSpecs(req MappingSpec) []MappingSpec {
	mods := specModules(req)
	out := []MappingSpec{req}
	seen := map[string]bool{req.Key(): true}
	add := func(sp MappingSpec) {
		if sp.Validate() != nil {
			return
		}
		if k := sp.Key(); !seen[k] {
			seen[k] = true
			out = append(out, sp)
		}
	}
	if m, ok := colorExponentFor(mods); ok {
		add(MappingSpec{Alg: "color", Levels: req.Levels, M: m})
	}
	add(MappingSpec{Alg: "labeltree", Levels: req.Levels, Modules: mods})
	add(MappingSpec{Alg: "mod", Levels: req.Levels, Modules: mods})
	add(MappingSpec{Alg: "levelcyclic", Levels: req.Levels, Modules: mods})
	return out
}

// specModules is the module count a spec serves.
func specModules(sp MappingSpec) int {
	if sp.Alg == "color" {
		return (1 << uint(sp.M)) - 1
	}
	return sp.Modules
}

// boundM is the BoundQuery M parameter: the COLOR exponent for color
// (the only alg with closed-form bounds), the module count otherwise.
func boundM(sp MappingSpec) int {
	if sp.Alg == "color" {
		return sp.M
	}
	return sp.Modules
}

// colorExponentFor inverts modules = 2^m - 1 within the validated
// exponent range.
func colorExponentFor(modules int) (int, bool) {
	for m := minColorM; m <= maxColorM; m++ {
		if (1<<uint(m))-1 == modules {
			return m, true
		}
	}
	return 0, false
}

// ControllerSnapshot is the /debug/vars view of the policy loop.
type ControllerSnapshot struct {
	Interval string                    `json:"interval"`
	Entries  []ControllerEntrySnapshot `json:"entries,omitempty"`
}

// ControllerEntrySnapshot is one policy-managed spec's state.
type ControllerEntrySnapshot struct {
	Spec         string             `json:"spec"`
	Effective    string             `json:"effective"`
	Migrations   int64              `json:"migrations"`
	DwellSeconds float64            `json:"dwell_seconds"`
	LastAction   string             `json:"last_action,omitempty"`
	LastReason   string             `json:"last_reason,omitempty"`
	Scores       map[string]float64 `json:"scores,omitempty"`
}

// snapshot renders the controller state for /debug/vars and /metrics.
func (c *serverController) snapshot() *ControllerSnapshot {
	now := time.Now()
	states := c.ctrl.States()

	c.status.mu.Lock()
	out := &ControllerSnapshot{Interval: c.interval.String()}
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := states[k]
		en := ControllerEntrySnapshot{
			Spec:       k,
			Effective:  st.Current,
			Migrations: st.Migrations,
		}
		if !st.LastMigration.IsZero() {
			en.DwellSeconds = now.Sub(st.LastMigration).Seconds()
		}
		if es := c.status.entries[k]; es != nil {
			en.LastAction = es.lastAction
			en.LastReason = es.lastReason
			if len(es.scores) > 0 {
				en.Scores = make(map[string]float64, len(es.scores))
				for ck, v := range es.scores {
					en.Scores[ck] = v
				}
			}
		}
		out.Entries = append(out.Entries, en)
	}
	c.status.mu.Unlock()
	return out
}
