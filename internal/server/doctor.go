// Incident replay: the server-side half of pmsdoctor -replay. An
// incident bundles the PMSTRC1 window of the requests that crossed the
// breach, plus (when pmsd ran under -chaos) the fault injector's config.
// ReplayIncident re-drives that window against two fresh deterministic
// servers — with the chaos schedule rebuilt, so the same request indexes
// draw the same faults — and confirms reproduction on two axes:
//
//   - determinism: both replays produce bit-identical response digests
//     (the same contract `make bench-replay` enforces);
//   - rule refire: judging the replayed flight events with the
//     incident's own SLO config re-fires every count-based rule that
//     fired originally (latency rules depend on replay wall time and
//     are excluded from the verdict).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/faultinject"
	"repro/internal/flightrec"
	"repro/internal/replay"
)

// ChaosConfigMetaKey is the incident meta key under which pmsd stamps
// the fault injector's JSON config, so the replayer can rebuild it.
const ChaosConfigMetaKey = "chaos_config"

// IncidentReplayResult is the reproduction verdict for one incident.
type IncidentReplayResult struct {
	Records      int           `json:"records"`
	ChaosApplied bool          `json:"chaos_applied"`
	Requests     int           `json:"requests"`
	StatusCounts map[int]int64 `json:"status_counts"`

	Digest        string `json:"digest"`
	DigestRerun   string `json:"digest_rerun"`
	Deterministic bool   `json:"deterministic"`

	// OriginalRules are the count-based rules that fired in the original
	// breach; ReplayRules are the rules the incident's SLO config fires
	// over the replayed events. Reproduced = deterministic digests AND
	// every original count-based rule refired.
	OriginalRules []string `json:"original_rules"`
	ReplayRules   []string `json:"replay_rules"`
	Reproduced    bool     `json:"reproduced"`

	BoundChecks     int64 `json:"bound_checks"`
	BoundViolations int64 `json:"bound_violations"`
}

// deterministicRule reports whether a rule's verdict survives replay:
// count-based rules (statuses, counters) do; wall-time rules do not.
func deterministicRule(rule string) bool {
	return rule != flightrec.RuleP99Latency
}

// replayIncidentOnce drives the incident's trace through a fresh
// deterministic server's full middleware chain (flight capture, window
// recorder, rebuilt chaos) and judges the replayed events against the
// incident's SLO config.
func replayIncidentOnce(base Config, inc *flightrec.Incident, chaos *faultinject.Config) (replay.Result, []flightrec.Breach, int64, int64, error) {
	cfg := replayServerConfig(base)
	cfg.DisableFlightRec = false
	if chaos != nil {
		in := faultinject.New(*chaos)
		cfg.Middleware = in.Middleware
	}
	srv := New(cfg)
	// Replay through the composed handler, not the bare mux: the chaos
	// layer must answer the same request indexes it answered live, and
	// the capture middleware must see those answers.
	res := replay.Replay(srv.httpSrv.Handler, inc.Trace)
	events := srv.fr.EventsSnapshot()
	frame := srv.metricFrame()
	breaches := flightrec.EvaluateStatic(events, frame, inc.Meta.SLO)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(ctx)
	return res, breaches, frame.BoundChecks, frame.BoundViolations, err
}

// ReplayIncident re-drives the incident's bundled trace twice and
// returns the reproduction verdict. base is the server config to derive
// the replay servers from (zero value for defaults).
func ReplayIncident(base Config, inc *flightrec.Incident) (IncidentReplayResult, error) {
	out := IncidentReplayResult{}
	if inc.Trace == nil || len(inc.Trace.Records) == 0 {
		return out, fmt.Errorf("incident bundles no replay trace")
	}
	out.Records = len(inc.Trace.Records)

	var chaos *faultinject.Config
	if raw, ok := inc.Meta.Meta[ChaosConfigMetaKey]; ok && raw != "" {
		var cc faultinject.Config
		if err := json.Unmarshal([]byte(raw), &cc); err != nil {
			return out, fmt.Errorf("incident chaos config: %w", err)
		}
		chaos = &cc
		out.ChaosApplied = true
	}

	first, breaches1, checks, viol1, err := replayIncidentOnce(base, inc, chaos)
	if err != nil {
		return out, fmt.Errorf("first replay: %w", err)
	}
	second, breaches2, _, viol2, err := replayIncidentOnce(base, inc, chaos)
	if err != nil {
		return out, fmt.Errorf("second replay: %w", err)
	}

	out.Requests = first.Requests
	out.StatusCounts = first.StatusCounts
	out.Digest = first.Digest
	out.DigestRerun = second.Digest
	out.Deterministic = first.Digest == second.Digest
	out.BoundChecks = checks
	out.BoundViolations = viol1 + viol2

	for _, br := range inc.Meta.Breaches {
		if deterministicRule(br.Rule) {
			out.OriginalRules = append(out.OriginalRules, br.Rule)
		}
	}
	fired := map[string]bool{}
	for _, br := range breaches1 {
		out.ReplayRules = append(out.ReplayRules, br.Rule)
		fired[br.Rule] = true
	}
	// Both replays must agree on the verdict, or reproduction is moot.
	refired2 := map[string]bool{}
	for _, br := range breaches2 {
		refired2[br.Rule] = true
	}
	out.Reproduced = out.Deterministic
	for _, rule := range out.OriginalRules {
		if !fired[rule] || !refired2[rule] {
			out.Reproduced = false
		}
	}
	return out, nil
}
