package lowerbound

import (
	"testing"

	"repro/internal/basiccolor"
)

// Theorem 2 exhaustively on small instances: infeasible with N+K-k-1
// colors, feasible with N+K-k.
func TestTheorem2Exhaustive(t *testing.T) {
	cases := []struct{ levels, k int }{
		{2, 1}, {3, 1}, {4, 1},
		{2, 2}, {3, 2}, {4, 2}, {5, 2},
		{3, 3}, {4, 3},
	}
	for _, c := range cases {
		opt := basiccolor.Params{Levels: c.levels, SubtreeLevels: c.k}.Colors()
		below, err := Search(c.levels, c.k, opt-1)
		if err != nil {
			t.Fatalf("N=%d k=%d: %v", c.levels, c.k, err)
		}
		if below.Feasible {
			t.Errorf("N=%d k=%d: CF coloring found with %d < %d colors", c.levels, c.k, opt-1, opt)
		}
		at, err := Search(c.levels, c.k, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !at.Feasible {
			t.Errorf("N=%d k=%d: no CF coloring with the optimal %d colors", c.levels, c.k, opt)
		}
		if at.Feasible {
			if err := VerifyWitness(c.levels, c.k, at.Witness); err != nil {
				t.Errorf("N=%d k=%d: witness invalid: %v", c.levels, c.k, err)
			}
		}
		if below.Explored == 0 || at.Explored == 0 {
			t.Errorf("N=%d k=%d: search explored nothing", c.levels, c.k)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(2, 3, 4); err == nil {
		t.Error("N < k should fail")
	}
	if _, err := Search(9, 2, 4); err == nil {
		t.Error("N too large should fail")
	}
	if _, err := Search(3, 2, 0); err == nil {
		t.Error("0 colors should fail")
	}
	if _, err := Search(3, 2, 65); err == nil {
		t.Error(">64 colors should fail")
	}
}

func TestVerifyWitnessRejects(t *testing.T) {
	if err := VerifyWitness(3, 2, []int8{0, 0}); err == nil {
		t.Error("wrong length should fail")
	}
	// All-zero coloring conflicts everywhere.
	bad := make([]int8, 7)
	if err := VerifyWitness(3, 2, bad); err == nil {
		t.Error("constant coloring should fail verification")
	}
}

// The structural certificate behind Theorem 2 holds for a range of (N, k)
// well beyond what exhaustive search reaches.
func TestPairCoverCertificate(t *testing.T) {
	for k := 1; k <= 4; k++ {
		for levels := 2 * k; levels <= 2*k+4 && levels <= 12; levels++ {
			if err := PairCoverCertificate(levels, k); err != nil {
				t.Errorf("N=%d k=%d: %v", levels, k, err)
			}
		}
	}
}

func TestPairCoverCertificateErrors(t *testing.T) {
	if err := PairCoverCertificate(3, 2); err == nil {
		t.Error("N < 2k should fail")
	}
}

// Search with generous colors must find the BASIC-COLOR-style coloring
// quickly (sanity that pruning is not over-aggressive).
func TestSearchFeasibleWithExtraColors(t *testing.T) {
	res, err := Search(4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Error("8 colors must suffice for N=4, k=2 (optimum is 5)")
	}
}

func BenchmarkSearchInfeasible(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := Search(4, 2, 4)
		if err != nil || res.Feasible {
			b.Fatalf("unexpected: %v %v", res.Feasible, err)
		}
	}
}
