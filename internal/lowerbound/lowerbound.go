// Package lowerbound provides exact machinery for the paper's Theorem 2:
// any mapping of binary trees of height N that is conflict-free on the
// subtree template S(K) and the path template P(N) needs at least
// M = N + K - k memory modules (K = 2^k - 1).
//
// Two independent verifications are offered:
//
//   - Search runs an exhaustive backtracking search (with canonical-color
//     symmetry breaking) for an M'-coloring of an N-level tree that is
//     conflict-free on both families, certifying for small instances that
//     no such coloring exists below N+K-k and that one exists at N+K-k.
//
//   - PairCoverCertificate verifies the structural heart of the paper's
//     proof: every pair of nodes of a TP_K(i, N-k) set lies together in
//     some S(K) instance or some P(N) instance, so CF on {S(K), P(N)}
//     forces each TP set (of size exactly N+K-k) to be rainbow.
package lowerbound

import (
	"fmt"

	"repro/internal/template"
	"repro/internal/tree"
)

// Result reports the outcome of an exhaustive search.
type Result struct {
	Colors   int   // number of colors searched
	Feasible bool  // whether a CF coloring exists
	Explored int64 // number of search nodes visited
	// Witness holds one conflict-free coloring (indexed by heap index)
	// when Feasible.
	Witness []int8
}

// Search exhaustively decides whether an N-level complete binary tree
// admits a coloring with `colors` colors that is conflict-free on S(2^k-1)
// and P(N). levels is the paper's N; subtreeLevels is k. The search is
// exponential; it is intended for the small instances of experiment E2
// (levels ≤ 5, colors ≤ 8 run in well under a second thanks to the
// canonical-color pruning).
func Search(levels, subtreeLevels, colors int) (Result, error) {
	if subtreeLevels < 1 || levels < subtreeLevels {
		return Result{}, fmt.Errorf("lowerbound: invalid N=%d k=%d", levels, subtreeLevels)
	}
	if levels > 8 {
		return Result{}, fmt.Errorf("lowerbound: N=%d too large for exhaustive search", levels)
	}
	if colors < 1 || colors > 64 {
		return Result{}, fmt.Errorf("lowerbound: colors %d out of range [1,64]", colors)
	}
	t := tree.New(levels)
	K := tree.SubtreeSize(subtreeLevels)

	// Collect all constraint sets: each must end up rainbow.
	var constraints [][]int64 // heap indices per instance
	sf, err := template.NewFamily(t, template.Subtree, K)
	if err != nil {
		return Result{}, err
	}
	pf, err := template.NewFamily(t, template.Path, int64(levels))
	if err != nil {
		return Result{}, err
	}
	for _, f := range []template.Family{sf, pf} {
		f.WalkInstances(func(in template.Instance) bool {
			var hs []int64
			in.Walk(func(n tree.Node) bool {
				hs = append(hs, n.HeapIndex())
				return true
			})
			constraints = append(constraints, hs)
			return true
		})
	}

	nodes := t.Nodes()
	// memberOf[h] lists the constraints containing heap index h.
	memberOf := make([][]int32, nodes)
	for ci, hs := range constraints {
		for _, h := range hs {
			memberOf[h] = append(memberOf[h], int32(ci))
		}
	}
	// usedMask[ci] is the bitmask of colors already present in constraint ci.
	usedMask := make([]uint64, len(constraints))
	assignment := make([]int8, nodes)
	for i := range assignment {
		assignment[i] = -1
	}

	res := Result{Colors: colors}
	var assign func(h int64, maxUsed int) bool
	assign = func(h int64, maxUsed int) bool {
		if h == nodes {
			return true
		}
		res.Explored++
		// Canonical symmetry breaking: the first time a new color appears
		// it must be the smallest unused one, so only colors 0..maxUsed+1
		// are tried.
		limit := maxUsed + 1
		if limit >= colors {
			limit = colors - 1
		}
		for c := 0; c <= limit; c++ {
			bit := uint64(1) << uint(c)
			ok := true
			for _, ci := range memberOf[h] {
				if usedMask[ci]&bit != 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, ci := range memberOf[h] {
				usedMask[ci] |= bit
			}
			assignment[h] = int8(c)
			next := maxUsed
			if c > maxUsed {
				next = c
			}
			if assign(h+1, next) {
				return true
			}
			assignment[h] = -1
			for _, ci := range memberOf[h] {
				usedMask[ci] &^= bit
			}
		}
		return false
	}

	if assign(0, -1) {
		res.Feasible = true
		res.Witness = append([]int8(nil), assignment...)
	}
	return res, nil
}

// VerifyWitness checks that a Search witness really is conflict-free on
// S(2^k-1) and P(N).
func VerifyWitness(levels, subtreeLevels int, witness []int8) error {
	t := tree.New(levels)
	if int64(len(witness)) != t.Nodes() {
		return fmt.Errorf("lowerbound: witness has %d entries, want %d", len(witness), t.Nodes())
	}
	K := tree.SubtreeSize(subtreeLevels)
	check := func(f template.Family) error {
		var bad error
		f.WalkInstances(func(in template.Instance) bool {
			var mask uint64
			in.Walk(func(n tree.Node) bool {
				bit := uint64(1) << uint(witness[n.HeapIndex()])
				if mask&bit != 0 {
					bad = fmt.Errorf("lowerbound: conflict in %v", in)
					return false
				}
				mask |= bit
				return true
			})
			return bad == nil
		})
		return bad
	}
	sf, err := template.NewFamily(t, template.Subtree, K)
	if err != nil {
		return err
	}
	if err := check(sf); err != nil {
		return err
	}
	pf, err := template.NewFamily(t, template.Path, int64(levels))
	if err != nil {
		return err
	}
	return check(pf)
}

// PairCoverCertificate checks, for an N-level tree and subtree parameter
// k, that every pair of nodes in every TP_K(i, N-k) set co-occurs in some
// S(2^k-1) instance or some P(N) instance. This is exactly the case
// analysis in the proof of Theorem 2; together with |TP| = N+K-k it
// certifies the lower bound for arbitrary N without any search.
func PairCoverCertificate(levels, subtreeLevels int) error {
	if subtreeLevels < 1 || levels < 2*subtreeLevels {
		return fmt.Errorf("lowerbound: certificate needs N ≥ 2k, got N=%d k=%d", levels, subtreeLevels)
	}
	t := tree.New(levels)
	anchor := levels - subtreeLevels
	fam, err := template.TPFamily(t, subtreeLevels, anchor)
	if err != nil {
		return err
	}
	for _, tp := range fam {
		nodes := tp.Nodes(t)
		for a := 0; a < len(nodes); a++ {
			for b := a + 1; b < len(nodes); b++ {
				if !pairCovered(t, subtreeLevels, tp.Root, nodes[a], nodes[b]) {
					return fmt.Errorf("lowerbound: pair %v,%v of TP at %v not covered", nodes[a], nodes[b], tp.Root)
				}
			}
		}
	}
	return nil
}

// pairCovered reports whether u and v lie together in a single S(2^k-1)
// instance or a single P(levels) instance of the tree.
func pairCovered(t tree.Tree, k int, tpRoot, u, v tree.Node) bool {
	// Subtree case: both are in the size-K subtree rooted at tpRoot.
	if tpRoot.IsAncestorOf(u) && tpRoot.IsAncestorOf(v) &&
		u.Level < tpRoot.Level+k && v.Level < tpRoot.Level+k {
		return true
	}
	// Path case: one is an ancestor of the other, and a leaf-to-root path
	// of the full tree passes through both (always true for an
	// ancestor-descendant pair because paths run the full height and any
	// descendant leaf works).
	return u.IsAncestorOf(v) || v.IsAncestorOf(u)
}
