// Package dictionary implements the second data structure named by the
// paper's introduction ("heaps and dictionaries are among the two most
// popular data structures implemented with trees"): a dictionary over a
// complete binary search tree whose lookups walk root-to-key paths —
// P-template traffic through the parallel memory system.
//
// Two access schedules are provided:
//
//   - Lookup submits one search's whole path as a single parallel batch
//     (the paper's P-template access);
//   - BatchLookup runs B independent searches level-synchronously: at each
//     step the B searches' current nodes form one parallel batch, the way
//     a lock-step SIMD machine would drive the memory system.
package dictionary

import (
	"fmt"

	"repro/internal/pms"
	"repro/internal/rangequery"
	"repro/internal/tree"
)

// Dict is a complete-BST dictionary bound to a memory system simulator.
// Keys are the in-order positions 0 … 2^H-2; values are user payloads.
type Dict struct {
	sys    *pms.System
	t      tree.Tree
	values []int64
	set    []bool
}

// New builds an empty dictionary over the mapping's tree.
func New(sys *pms.System) *Dict {
	t := sys.Mapping().Tree()
	return &Dict{
		sys:    sys,
		t:      t,
		values: make([]int64, t.Nodes()),
		set:    make([]bool, t.Nodes()),
	}
}

// KeySpace returns the number of addressable keys.
func (d *Dict) KeySpace() int64 { return d.t.Nodes() }

// System returns the attached simulator.
func (d *Dict) System() *pms.System { return d.sys }

// node returns the BST node holding the key.
func (d *Dict) node(key int64) (tree.Node, error) {
	return rangequery.NodeForKey(d.t, key)
}

// searchPath returns the root-to-key node sequence (top-down).
func (d *Dict) searchPath(key int64) ([]tree.Node, error) {
	n, err := d.node(key)
	if err != nil {
		return nil, err
	}
	path := make([]tree.Node, n.Level+1)
	for lvl := 0; lvl <= n.Level; lvl++ {
		path[lvl] = n.Ancestor(n.Level - lvl)
	}
	return path, nil
}

// Insert stores value under key, charging the search path as one batch.
// Returns the memory cycles consumed.
func (d *Dict) Insert(key, value int64) (int64, error) {
	path, err := d.searchPath(key)
	if err != nil {
		return 0, err
	}
	cycles := d.sys.SubmitDrain(path)
	h := path[len(path)-1].HeapIndex()
	d.values[h] = value
	d.set[h] = true
	return cycles, nil
}

// Lookup fetches the value under key, charging the search path as one
// parallel batch (a P-template access). found reports whether the key had
// been inserted.
func (d *Dict) Lookup(key int64) (value int64, found bool, cycles int64, err error) {
	path, err := d.searchPath(key)
	if err != nil {
		return 0, false, 0, err
	}
	cycles = d.sys.SubmitDrain(path)
	h := path[len(path)-1].HeapIndex()
	return d.values[h], d.set[h], cycles, nil
}

// BatchResult summarizes a level-synchronous batch of lookups.
type BatchResult struct {
	Keys   int
	Found  int
	Cycles int64 // total memory cycles across all levels
	Steps  int   // lock-step rounds executed (deepest search depth + 1)
}

// BatchLookup runs the searches lock-step: at each depth, the frontier
// nodes of all still-active searches form one parallel batch. This is the
// schedule under which per-level module spreading (L-template behaviour)
// matters as much as path behaviour.
func (d *Dict) BatchLookup(keys []int64) (BatchResult, error) {
	if len(keys) == 0 {
		return BatchResult{}, fmt.Errorf("dictionary: empty batch")
	}
	paths := make([][]tree.Node, len(keys))
	maxDepth := 0
	for i, key := range keys {
		p, err := d.searchPath(key)
		if err != nil {
			return BatchResult{}, err
		}
		paths[i] = p
		if len(p) > maxDepth {
			maxDepth = len(p)
		}
	}
	res := BatchResult{Keys: len(keys), Steps: maxDepth}
	frontier := make([]tree.Node, 0, len(keys))
	for depth := 0; depth < maxDepth; depth++ {
		frontier = frontier[:0]
		for _, p := range paths {
			if depth < len(p) {
				frontier = append(frontier, p[depth])
			}
		}
		res.Cycles += d.sys.SubmitDrain(frontier)
	}
	for _, p := range paths {
		if d.set[p[len(p)-1].HeapIndex()] {
			res.Found++
		}
	}
	return res, nil
}
