package dictionary

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/colormap"
	"repro/internal/pms"
	"repro/internal/tree"
)

func colorSys(t *testing.T, levels int) *pms.System {
	t.Helper()
	p, err := colormap.Canonical(levels, 3)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := colormap.Color(p)
	if err != nil {
		t.Fatal(err)
	}
	return pms.NewSystem(arr)
}

func TestInsertLookup(t *testing.T) {
	d := New(colorSys(t, 10))
	if d.KeySpace() != 1023 {
		t.Fatalf("KeySpace = %d", d.KeySpace())
	}
	keys := []int64{0, 511, 1022, 300, 77}
	for i, k := range keys {
		cycles, err := d.Insert(k, int64(i)*10)
		if err != nil {
			t.Fatal(err)
		}
		if cycles < 1 {
			t.Errorf("insert %d cost %d cycles", k, cycles)
		}
	}
	for i, k := range keys {
		v, found, cycles, err := d.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != int64(i)*10 {
			t.Errorf("Lookup(%d) = %d, %v", k, v, found)
		}
		if cycles < 1 {
			t.Errorf("lookup cost %d", cycles)
		}
	}
	if _, found, _, err := d.Lookup(123); err != nil || found {
		t.Errorf("absent key reported found=%v err=%v", found, err)
	}
}

func TestLookupErrors(t *testing.T) {
	d := New(colorSys(t, 6))
	if _, _, _, err := d.Lookup(-1); err == nil {
		t.Error("negative key should fail")
	}
	if _, _, _, err := d.Lookup(d.KeySpace()); err == nil {
		t.Error("key past end should fail")
	}
	if _, err := d.Insert(-1, 0); err == nil {
		t.Error("insert of bad key should fail")
	}
}

// Under canonical COLOR the root path of any key within the first N
// levels is conflict-free, so a single lookup takes exactly 1 cycle.
func TestLookupCostOneCycleShallow(t *testing.T) {
	d := New(colorSys(t, 10)) // N = 6
	n, err := d.node(0)
	if err != nil {
		t.Fatal(err)
	}
	_ = n
	// Keys whose node sits within the first 6 levels: the root key.
	tr := tree.New(10)
	rootKey := tr.Nodes() / 2 // in-order position of the root
	_, _, cycles, err := d.Lookup(rootKey)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 1 {
		t.Errorf("root lookup cost %d cycles, want 1", cycles)
	}
}

func TestBatchLookup(t *testing.T) {
	d := New(colorSys(t, 10))
	for k := int64(0); k < 100; k += 10 {
		if _, err := d.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	keys := []int64{0, 10, 20, 55, 1000}
	res, err := d.BatchLookup(keys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Keys != 5 {
		t.Errorf("Keys = %d", res.Keys)
	}
	if res.Found != 3 { // 0, 10, 20 inserted; 55 and 1000 not
		t.Errorf("Found = %d, want 3", res.Found)
	}
	if res.Steps < 1 || res.Cycles < int64(res.Steps) {
		t.Errorf("steps %d cycles %d inconsistent", res.Steps, res.Cycles)
	}
}

func TestBatchLookupEmpty(t *testing.T) {
	d := New(colorSys(t, 6))
	if _, err := d.BatchLookup(nil); err == nil {
		t.Error("empty batch should fail")
	}
}

func TestBatchLookupBadKey(t *testing.T) {
	d := New(colorSys(t, 6))
	if _, err := d.BatchLookup([]int64{1, -5}); err == nil {
		t.Error("bad key in batch should fail")
	}
}

// The mapping quality shows up in batch cost: random vs COLOR on the same
// batch of random lookups. (COLOR's per-level blocks are conflict-free;
// random has birthday collisions at every level.)
func TestBatchCostComparesMappings(t *testing.T) {
	levels := 12
	p, err := colormap.Canonical(levels, 3)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := colormap.Color(p)
	if err != nil {
		t.Fatal(err)
	}
	rnd := baseline.Random(tree.New(levels), arr.Modules(), 5)

	rng := rand.New(rand.NewSource(8))
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = rng.Int63n(tree.New(levels).Nodes())
	}
	dColor := New(pms.NewSystem(arr))
	dRand := New(pms.NewSystem(rnd))
	resColor, err := dColor.BatchLookup(keys)
	if err != nil {
		t.Fatal(err)
	}
	resRand, err := dRand.BatchLookup(keys)
	if err != nil {
		t.Fatal(err)
	}
	if resColor.Cycles <= 0 || resRand.Cycles <= 0 {
		t.Fatal("cycles must be positive")
	}
	// Both must at least respect the pigeonhole floor per step.
	minPerStep := int64(len(keys) / arr.Modules())
	if resColor.Cycles < minPerStep || resRand.Cycles < minPerStep {
		t.Error("cycles below pigeonhole floor")
	}
}

func TestSystemAccessor(t *testing.T) {
	sys := colorSys(t, 6)
	d := New(sys)
	if d.System() != sys {
		t.Error("System accessor wrong")
	}
}
