package metrics_test

import (
	"math/rand"
	"testing"

	"repro/internal/coloring"
	"repro/internal/colormap"
	"repro/internal/metrics"
	"repro/internal/template"
)

func TestCanonicalSizes(t *testing.T) {
	cases := []struct {
		m       int
		k, n, M int64
	}{
		{2, 1, 3, 3},
		{3, 3, 6, 7},
		{4, 7, 11, 15},
		{5, 15, 20, 31},
	}
	for _, c := range cases {
		k, n, M := metrics.CanonicalSizes(c.m)
		if k != c.k || n != c.n || M != c.M {
			t.Errorf("CanonicalSizes(%d) = (%d,%d,%d), want (%d,%d,%d)", c.m, k, n, M, c.k, c.n, c.M)
		}
	}
	if _, _, M := metrics.CanonicalSizes(0); M != 0 {
		t.Error("CanonicalSizes(0) did not report invalid")
	}
	if _, _, M := metrics.CanonicalSizes(63); M != 0 {
		t.Error("CanonicalSizes(63) did not report invalid")
	}
}

func TestConflictBoundTable(t *testing.T) {
	// m=3: K=3, N=6, M=7.
	cases := []struct {
		name  string
		q     metrics.BoundQuery
		bound int
		ok    bool
	}{
		{"S small conflict-free", metrics.BoundQuery{Alg: "color", M: 3, Levels: 10, Kind: "S", Size: 3}, 0, true},
		{"S at K exactly", metrics.BoundQuery{Alg: "color", M: 3, Levels: 2, Kind: "S", Size: 3}, 0, true},
		{"S at M", metrics.BoundQuery{Alg: "color", M: 3, Levels: 10, Kind: "S", Size: 7}, 1, true},
		{"S too big", metrics.BoundQuery{Alg: "color", M: 3, Levels: 10, Kind: "S", Size: 15}, 0, false},
		{"S tree too shallow for Thm4", metrics.BoundQuery{Alg: "color", M: 3, Levels: 2, Kind: "S", Size: 7}, 0, false},
		{"P conflict-free at N", metrics.BoundQuery{Alg: "color", M: 3, Levels: 6, Kind: "P", Size: 6}, 0, true},
		{"P cost 1 at M", metrics.BoundQuery{Alg: "color", M: 3, Levels: 7, Kind: "P", Size: 7}, 1, true},
		{"P shallow tree skipped", metrics.BoundQuery{Alg: "color", M: 3, Levels: 5, Kind: "P", Size: 6}, 0, false},
		{"L never bounded", metrics.BoundQuery{Alg: "color", M: 3, Levels: 16, Kind: "L", Size: 2}, 0, false},
		{"composite", metrics.BoundQuery{Alg: "color", M: 3, Levels: 10, Kind: "C", Total: 20, Parts: 3}, 15, true},
		{"composite exact multiple", metrics.BoundQuery{Alg: "color", M: 3, Levels: 10, Kind: "C", Total: 14, Parts: 2}, 10, true},
		{"composite no parts", metrics.BoundQuery{Alg: "color", M: 3, Levels: 10, Kind: "C", Total: 14, Parts: 0}, 0, false},
		{"non-canonical alg", metrics.BoundQuery{Alg: "label", M: 3, Levels: 10, Kind: "S", Size: 3}, 0, false},
		{"bad m", metrics.BoundQuery{Alg: "color", M: 0, Levels: 10, Kind: "S", Size: 3}, 0, false},
		{"zero size", metrics.BoundQuery{Alg: "color", M: 3, Levels: 10, Kind: "S", Size: 0}, 0, false},
	}
	for _, c := range cases {
		bound, ok := metrics.ConflictBound(c.q)
		if bound != c.bound || ok != c.ok {
			t.Errorf("%s: ConflictBound(%+v) = (%d,%v), want (%d,%v)", c.name, c.q, bound, ok, c.bound, c.ok)
		}
	}
}

// TestBoundsSoundAgainstExhaustiveCosts is the cross-check that makes
// the online monitor trustworthy: over a grid of canonical COLOR
// parameterizations, whenever ConflictBound claims a bound applies to an
// elementary family, the exhaustively-enumerated worst case
// (coloring.FamilyCost over every instance of that size) must respect
// it. Any unsound precondition in bounds.go shows up here as a witness
// instance, not as a production bound_violations tick.
func TestBoundsSoundAgainstExhaustiveCosts(t *testing.T) {
	grid := []struct{ m, levels int }{
		{2, 4}, {2, 7}, {2, 10},
		{3, 7}, {3, 9}, {3, 12},
		{4, 15},
	}
	for _, gp := range grid {
		p, err := colormap.Canonical(gp.levels, gp.m)
		if err != nil {
			t.Fatalf("m=%d H=%d: %v", gp.m, gp.levels, err)
		}
		arr, err := colormap.Color(p)
		if err != nil {
			t.Fatalf("m=%d H=%d: %v", gp.m, gp.levels, err)
		}
		_, _, modules := metrics.CanonicalSizes(gp.m)
		checked := 0
		// Subtree sizes are 2^k - 1; sweep every one up to M.
		for size := int64(1); size <= modules; size = size*2 + 1 {
			checked += crossCheckFamily(t, arr, gp.m, gp.levels, template.Subtree, "S", size)
		}
		// Paths come in every size; sweep 1..M.
		for size := int64(1); size <= modules; size++ {
			checked += crossCheckFamily(t, arr, gp.m, gp.levels, template.Path, "P", size)
		}
		if checked == 0 {
			t.Errorf("m=%d H=%d: no applicable bound on the whole sweep", gp.m, gp.levels)
		}
	}
}

func crossCheckFamily(t *testing.T, arr coloring.Mapping, m, levels int, kind template.Kind, label string, size int64) int {
	t.Helper()
	bound, ok := metrics.ConflictBound(metrics.BoundQuery{
		Alg: "color", M: m, Levels: levels, Kind: label, Size: size,
	})
	if !ok {
		return 0
	}
	f, err := template.NewFamily(arr.Tree(), kind, size)
	if err != nil {
		// The monitor claimed a bound for a family the tree cannot even
		// host — preconditions are too loose.
		t.Errorf("m=%d H=%d: bound %d claimed for %s(%d) but family invalid: %v", m, levels, bound, label, size, err)
		return 0
	}
	cost, witness := coloring.FamilyCost(arr, f)
	if cost > bound {
		t.Errorf("m=%d H=%d: %s(%d) exhaustive cost %d exceeds monitored bound %d (witness %v)",
			m, levels, label, size, cost, bound, witness)
	}
	return 1
}

// TestCompositeBoundSoundOnRandomComposites mirrors the Theorem 6 sweep:
// seeded random composites never exceed the monitor's 4*ceil(D/M)+c.
func TestCompositeBoundSoundOnRandomComposites(t *testing.T) {
	grid := []struct{ m, levels int }{{2, 6}, {3, 9}, {4, 15}}
	for _, gp := range grid {
		p, err := colormap.Canonical(gp.levels, gp.m)
		if err != nil {
			t.Fatalf("m=%d H=%d: %v", gp.m, gp.levels, err)
		}
		arr, err := colormap.Color(p)
		if err != nil {
			t.Fatalf("m=%d H=%d: %v", gp.m, gp.levels, err)
		}
		_, _, modules := metrics.CanonicalSizes(gp.m)
		rng := rand.New(rand.NewSource(int64(gp.m)*1000 + int64(gp.levels)))
		for trial := 0; trial < 15; trial++ {
			D := modules + rng.Int63n(4*modules)
			c := 1 + rng.Intn(4)
			comp, err := template.RandomComposite(rng, arr.Tree(), D, c)
			if err != nil {
				continue
			}
			cost := coloring.CompositeConflicts(arr, comp)
			bound, ok := metrics.ConflictBound(metrics.BoundQuery{
				Alg: "color", M: gp.m, Levels: gp.levels, Kind: "C", Total: D, Parts: c,
			})
			if !ok {
				t.Fatalf("m=%d H=%d: composite bound inapplicable for D=%d c=%d", gp.m, gp.levels, D, c)
			}
			if cost > bound {
				t.Errorf("m=%d H=%d trial=%d: C(%d,%d) cost %d exceeds bound %d",
					gp.m, gp.levels, trial, D, c, cost, bound)
			}
		}
	}
}
