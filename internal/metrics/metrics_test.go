package metrics

import (
	"sync"
	"testing"
)

func TestDomainSnapshotMath(t *testing.T) {
	d := NewDomain(8)
	r := d.Recorder()
	if !r.Enabled() {
		t.Fatal("Recorder() of a live domain is disabled")
	}
	r.Access(0, 3)
	r.Access(2, 9)
	r.Access(7, 3)
	r.Batch(2)
	r.Batch(0)
	s := d.Snapshot()
	if s.TotalAccesses != 15 || s.ActiveModules != 3 {
		t.Fatalf("total=%d active=%d, want 15/3", s.TotalAccesses, s.ActiveModules)
	}
	if s.MaxLoad != 9 || s.MaxModule != 2 {
		t.Fatalf("max=%d at module %d, want 9 at 2", s.MaxLoad, s.MaxModule)
	}
	if s.MeanLoad != 5 {
		t.Fatalf("mean=%v, want 5", s.MeanLoad)
	}
	if s.LoadRatio != 9.0/5.0 {
		t.Fatalf("ratio=%v, want 1.8", s.LoadRatio)
	}
	if len(s.ModuleAccesses) != 8 {
		t.Fatalf("trimmed len=%d, want 8 (module 7 touched)", len(s.ModuleAccesses))
	}
	if s.Batches != 2 || s.Conflicts != 2 {
		t.Fatalf("batches=%d conflicts=%d, want 2/2", s.Batches, s.Conflicts)
	}
}

func TestDomainOverflowAndNegativeModules(t *testing.T) {
	d := NewDomain(4)
	r := d.Recorder()
	r.Access(4, 5)  // beyond bound
	r.Access(-1, 2) // nonsense module
	r.Access(1, 1)
	s := d.Snapshot()
	if s.Overflow != 7 {
		t.Fatalf("overflow=%d, want 7", s.Overflow)
	}
	if s.TotalAccesses != 1 {
		t.Fatalf("total=%d, want 1 (overflow excluded)", s.TotalAccesses)
	}
}

func TestNilDomainIsDisabled(t *testing.T) {
	var d *Domain
	r := d.Recorder()
	if r.Enabled() {
		t.Fatal("nil domain produced an enabled recorder")
	}
	// All of these must be safe no-ops.
	r.Access(3, 1)
	r.Batch(1)
	d.ObserveFamily("S", 2)
	if d.CheckBound(BoundQuery{Alg: "color", M: 2, Levels: 8, Kind: "S", Size: 1}, 99) {
		t.Fatal("nil domain reported a violation")
	}
	s := d.Snapshot()
	if s.TotalAccesses != 0 || s.Families != nil {
		t.Fatalf("nil snapshot not zero: %+v", s)
	}
	if d.FamilyHist("S") != nil {
		t.Fatal("nil domain returned a histogram")
	}
}

func TestObserveFamilyAndSnapshot(t *testing.T) {
	d := NewDomain(4)
	d.ObserveFamily("S", 0)
	d.ObserveFamily("S", 1)
	d.ObserveFamily("C", 7)
	d.ObserveFamily("bogus", 5) // ignored
	s := d.Snapshot()
	if len(s.Families) != 2 {
		t.Fatalf("families=%d, want 2 (S and C)", len(s.Families))
	}
	if s.Families[0].Family != "S" || s.Families[0].Count != 2 || s.Families[0].Sum != 1 {
		t.Fatalf("S family snapshot %+v", s.Families[0])
	}
	if s.Families[1].Family != "C" || s.Families[1].Count != 1 || s.Families[1].Sum != 7 {
		t.Fatalf("C family snapshot %+v", s.Families[1])
	}
	if s.Families[0].Mean != 0.5 {
		t.Fatalf("S mean=%v, want 0.5", s.Families[0].Mean)
	}
}

func TestCheckBoundCounters(t *testing.T) {
	d := NewDomain(4)
	q := BoundQuery{Alg: "color", M: 3, Levels: 16, Kind: "S", Size: 7}
	if d.CheckBound(q, 1) {
		t.Fatal("observed 1 ≤ bound 1 flagged as violation")
	}
	if !d.CheckBound(q, 2) {
		t.Fatal("observed 2 > bound 1 not flagged")
	}
	// L has no closed form: skipped, not checked.
	if d.CheckBound(BoundQuery{Alg: "color", M: 3, Levels: 16, Kind: "L", Size: 4}, 100) {
		t.Fatal("inapplicable bound reported a violation")
	}
	s := d.Snapshot()
	if s.BoundChecks != 2 || s.BoundViolations != 1 || s.BoundSkipped != 1 {
		t.Fatalf("checks=%d violations=%d skipped=%d, want 2/1/1",
			s.BoundChecks, s.BoundViolations, s.BoundSkipped)
	}
}

// TestConcurrentRecordExactTotals is the sharded-counter hammer: many
// goroutines record through independent recorders while snapshots are
// taken concurrently, and after all writers finish the final snapshot
// must account for every single record — striping must never lose
// counts. Run with -race this also proves the access pattern clean.
func TestConcurrentRecordExactTotals(t *testing.T) {
	const (
		writers = 16
		modules = 64
		// A multiple of modules, so each writer's (w+i)%modules sweep is
		// exactly uniform and the final load ratio must be exactly 1.
		perWriter = 160 * modules
	)
	d := NewDomain(modules)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent scraper: exercises Snapshot against live writers.
	var scr sync.WaitGroup
	scr.Add(1)
	go func() {
		defer scr.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := d.Snapshot()
			if s.TotalAccesses < 0 {
				panic("negative total")
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := d.Recorder()
			for i := 0; i < perWriter; i++ {
				r.Access((w+i)%modules, 1)
				if i%100 == 0 {
					r.Batch(int64(i % 3))
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scr.Wait()

	s := d.Snapshot()
	if want := int64(writers * perWriter); s.TotalAccesses != want {
		t.Fatalf("lost counts: total=%d, want %d", s.TotalAccesses, want)
	}
	if want := int64(writers * ((perWriter + 99) / 100)); s.Batches != want {
		t.Fatalf("lost batches: %d, want %d", s.Batches, want)
	}
	// Every writer spreads uniformly over all modules, so the final load
	// must be perfectly balanced.
	if s.ActiveModules != modules {
		t.Fatalf("active=%d, want %d", s.ActiveModules, modules)
	}
	if s.LoadRatio != 1.0 {
		t.Fatalf("ratio=%v, want exactly 1 for a uniform pattern", s.LoadRatio)
	}
}

func TestRecorderStriping(t *testing.T) {
	d := NewDomain(4)
	seen := map[*stripe]bool{}
	for i := 0; i < stripeCount*2; i++ {
		seen[d.Recorder().s] = true
	}
	if len(seen) != stripeCount {
		t.Fatalf("round-robin visited %d stripes, want %d", len(seen), stripeCount)
	}
}

func TestFamilyIndex(t *testing.T) {
	for i, f := range Families {
		if FamilyIndex(f) != i {
			t.Fatalf("FamilyIndex(%q) = %d, want %d", f, FamilyIndex(f), i)
		}
	}
	if FamilyIndex("Q") != -1 {
		t.Fatal("unknown family did not map to -1")
	}
}
