package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obsv"
)

// Prometheus text-exposition writer (version 0.0.4 of the format: TYPE
// comment lines, `name{label="value"} value` series, histograms as
// cumulative _bucket/_sum/_count families). The writer is deliberately
// deterministic — series appear in exactly the order the caller emits
// them and label sets are written verbatim — so the full exposition can
// be pinned byte-for-byte by golden tests.

// Label is one name="value" pair of a series.
type Label struct {
	Name, Value string
}

// Expo accumulates one exposition. Errors from the underlying writer are
// sticky and surfaced by Err, so call sites chain emissions without
// per-line checks.
type Expo struct {
	w     io.Writer
	err   error
	typed map[string]struct{}
}

// NewExpo starts an exposition writing to w.
func NewExpo(w io.Writer) *Expo {
	return &Expo{w: w, typed: make(map[string]struct{})}
}

// Err returns the first underlying write error, if any.
func (e *Expo) Err() error { return e.err }

func (e *Expo) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// typeLine writes the # TYPE header for a metric family once per
// exposition; repeated emissions under the same family (e.g. one series
// per label value) share the first header.
func (e *Expo) typeLine(name, typ string) {
	if _, done := e.typed[name]; done {
		return
	}
	e.typed[name] = struct{}{}
	e.printf("# TYPE %s %s\n", name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// FormatValue renders a sample value the way the exposition format
// expects: shortest round-trip float, with +Inf spelled out.
func FormatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one counter series (TYPE header on first use of name).
func (e *Expo) Counter(name string, labels []Label, v int64) {
	e.typeLine(name, "counter")
	e.printf("%s%s %d\n", name, labelString(labels), v)
}

// Gauge emits one gauge series.
func (e *Expo) Gauge(name string, labels []Label, v float64) {
	e.typeLine(name, "gauge")
	e.printf("%s%s %s\n", name, labelString(labels), FormatValue(v))
}

// GaugeInt emits one integer-valued gauge series.
func (e *Expo) GaugeInt(name string, labels []Label, v int64) {
	e.typeLine(name, "gauge")
	e.printf("%s%s %d\n", name, labelString(labels), v)
}

// Histogram emits one obsv power-of-two histogram as a cumulative
// Prometheus histogram: _bucket series with inclusive upper bounds
// le="2^i-1" (obsv buckets hold exactly the values ≤ their BucketUpper,
// so the buckets translate without re-bucketing), a trailing le="+Inf"
// bucket, then _sum and _count. Empty interior buckets are elided to
// keep expositions compact; cumulative counts are unaffected.
func (e *Expo) Histogram(name string, labels []Label, h *obsv.Histogram) {
	if h == nil {
		return
	}
	count, sum, buckets := h.Load()
	e.HistogramData(name, labels, count, sum, buckets)
}

// HistogramData renders raw power-of-two histogram counters (the layout
// obsv.Histogram.Load returns) as a cumulative Prometheus histogram.
// Exported so layers with their own identically-bucketed histograms
// (the server's private latency/batch histograms) share this renderer.
func (e *Expo) HistogramData(name string, labels []Label, count, sum int64, buckets [obsv.NumBuckets]int64) {
	e.typeLine(name, "histogram")
	var cum int64
	for i := 0; i < obsv.NumBuckets-1; i++ {
		if buckets[i] == 0 {
			continue
		}
		cum += buckets[i]
		bl := append(append([]Label{}, labels...), Label{"le", strconv.FormatInt(obsv.BucketUpper(i), 10)})
		e.printf("%s_bucket%s %d\n", name, labelString(bl), cum)
	}
	infl := append(append([]Label{}, labels...), Label{"le", "+Inf"})
	e.printf("%s_bucket%s %d\n", name, labelString(infl), count)
	e.printf("%s_sum%s %d\n", name, labelString(labels), sum)
	e.printf("%s_count%s %d\n", name, labelString(labels), count)
}

// WriteDomain renders the domain metrics of d under the given name
// prefix (conventionally "pmsd"). Nil-safe: a disabled domain renders
// the bound counters (all zero) and load gauges only, so scrapers see a
// stable schema either way.
func WriteDomain(e *Expo, prefix string, d *Domain) {
	s := d.Snapshot()
	WriteDomainSnapshot(e, prefix, d, s)
}

// WriteDomainSnapshot renders a previously-taken snapshot; d is only
// consulted for raw family histogram buckets and may be nil (family
// histograms are then skipped).
func WriteDomainSnapshot(e *Expo, prefix string, d *Domain, s DomainSnapshot) {
	for mod, n := range s.ModuleAccesses {
		if n == 0 {
			continue
		}
		e.Counter(prefix+"_module_accesses_total", []Label{{"module", strconv.Itoa(mod)}}, n)
	}
	e.Counter(prefix+"_accesses_total", nil, s.TotalAccesses)
	e.Counter(prefix+"_module_accesses_overflow_total", nil, s.Overflow)
	e.GaugeInt(prefix+"_module_active", nil, int64(s.ActiveModules))
	e.GaugeInt(prefix+"_module_hottest", nil, int64(s.MaxModule))
	e.GaugeInt(prefix+"_module_load_max", nil, s.MaxLoad)
	e.Gauge(prefix+"_module_load_mean", nil, s.MeanLoad)
	e.Gauge(prefix+"_module_load_ratio", nil, s.LoadRatio)
	e.Counter(prefix+"_batches_total", nil, s.Batches)
	e.Counter(prefix+"_conflicts_total", nil, s.Conflicts)
	if d != nil {
		for _, fam := range Families {
			h := d.FamilyHist(fam)
			if c, _, _ := h.Load(); c == 0 {
				continue
			}
			e.Histogram(prefix+"_template_conflicts", []Label{{"family", fam}}, h)
		}
	}
	for _, sp := range s.Specs {
		for _, f := range sp.Families {
			e.Counter(prefix+"_spec_template_observations_total",
				[]Label{{"spec", sp.Key}, {"family", f.Family}}, f.Observations)
		}
	}
	for _, sp := range s.Specs {
		for _, f := range sp.Families {
			e.Counter(prefix+"_spec_template_conflicts_total",
				[]Label{{"spec", sp.Key}, {"family", f.Family}}, f.Conflicts)
		}
	}
	e.Counter(prefix+"_bound_checks_total", nil, s.BoundChecks)
	e.Counter(prefix+"_bound_violations_total", nil, s.BoundViolations)
	e.Counter(prefix+"_bound_checks_skipped_total", nil, s.BoundSkipped)
}

// Sample is one parsed series: a metric name, its label set, and the
// value. Histograms parse into their constituent _bucket/_sum/_count
// samples.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the value of one label ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// Scrape is a parsed exposition, ordered as served.
type Scrape struct {
	Samples []Sample
	index   map[string][]int
}

// Series returns every sample of the named metric, in exposition order.
func (sc *Scrape) Series(name string) []Sample {
	idxs := sc.index[name]
	out := make([]Sample, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, sc.Samples[i])
	}
	return out
}

// Value returns the value of the first series of name whose labels
// include every given pair, and whether one was found.
func (sc *Scrape) Value(name string, labels ...Label) (float64, bool) {
	for _, i := range sc.index[name] {
		s := sc.Samples[i]
		match := true
		for _, l := range labels {
			if s.Labels[l.Name] != l.Value {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Names returns the distinct metric names present, sorted.
func (sc *Scrape) Names() []string {
	names := make([]string, 0, len(sc.index))
	for n := range sc.index {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseExposition parses Prometheus text exposition format (the subset
// Expo emits plus arbitrary whitespace and comments) into a Scrape.
// Malformed lines fail the whole parse with their line number, making
// the parser double as a format validator in tests.
func ParseExposition(data string) (*Scrape, error) {
	sc := &Scrape{index: make(map[string][]int)}
	for ln, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sample, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: exposition line %d: %w", ln+1, err)
		}
		sc.index[sample.Name] = append(sc.index[sample.Name], len(sc.Samples))
		sc.Samples = append(sc.Samples, sample)
	}
	return sc, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name in %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A trailing timestamp (space-separated) is permitted by the format;
	// take the first field as the value.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", body)
		}
		name := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(body) {
				return fmt.Errorf("unterminated label value in %q", body)
			}
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				switch body[i+1] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					val.WriteByte(body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		into[name] = val.String()
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return nil
}
