// Package metrics is the domain-observability layer of the repository:
// where internal/obsv watches the *serving* path (how long a request
// spent in which stage), this package watches the *model* — which memory
// modules the served workload actually hits, how many conflicts each
// template family incurs, and whether any observed access pattern ever
// exceeds the paper's closed-form theorem bounds.
//
// Three pieces compose:
//
//   - Domain / Recorder: sharded, allocation-free per-module access and
//     conflict counters. Recording is one atomic add per touched module;
//     recorders are striped across independent counter banks so
//     concurrent simulator engines and batch workers do not contend on
//     the same cache lines. The pms and scheduler engines accept a
//     Recorder and tick it on their submit paths.
//   - Per-family conflict histograms: every template-cost evaluation
//     feeds its observed conflict count into an S/L/P/C histogram
//     (reusing obsv's power-of-two Histogram, so all histograms in the
//     system bucket identically).
//   - The bound monitor (bounds.go): each template-cost observation is
//     compared against the closed-form Theorem 4/6 bound for its
//     (mapping, template); a violation ticks a counter that must stay
//     zero, turning the paper's theorems into a production invariant.
//
// Everything is exported through DomainSnapshot, rendered by the serving
// layer's GET /metrics Prometheus endpoint (prom.go holds both the text
// exposition writer and the matching parser used by cmd/pmsstat).
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obsv"
)

// stripeCount is the number of independent counter banks. Recorders are
// dealt round-robin across stripes, so up to stripeCount concurrent
// writers tick disjoint cache lines; snapshots sum across stripes.
const stripeCount = 8

// DefaultMaxModules bounds the per-module counter arrays (and therefore
// the per-module series cardinality of the Prometheus exposition).
// Accesses to modules at or above the bound are still counted, in the
// aggregate Overflow counter. The paper's parameterizations use module
// counts in the tens; 1024 leaves generous headroom.
const DefaultMaxModules = 1024

// familyCount indexes the per-family conflict histograms: the paper's
// S, L, P elementary templates plus the composite C template.
const familyCount = 4

// NumFamilies exports the family count for callers sizing per-family
// arrays against Families (the adaptive controller's mix windows).
const NumFamilies = familyCount

// Families lists the template-family labels in histogram index order.
var Families = [familyCount]string{"S", "L", "P", "C"}

// FamilyIndex maps a template-family label (S|L|P|C) to its histogram
// index, or -1 for an unknown label.
func FamilyIndex(family string) int {
	for i, f := range Families {
		if f == family {
			return i
		}
	}
	return -1
}

// DefaultMaxSpecs bounds the per-spec attribution table (and therefore
// the per-spec series cardinality of the Prometheus exposition). One
// slot is reserved for OverflowSpec, which absorbs observations for
// every spec beyond the bound.
const DefaultMaxSpecs = 64

// OverflowSpec is the spec key that absorbs observations once the
// bounded per-spec table is full, mirroring the serving layer's
// overflow-tenant convention.
const OverflowSpec = "other"

// specStats accumulates one registry entry's live template mix:
// per-family observation counts and conflict sums, keyed by the entry's
// normalized mapping-spec key. The adaptive controller classifies a
// spec's workload from exactly these counters.
type specStats struct {
	observations [familyCount]atomic.Int64
	conflicts    [familyCount]atomic.Int64
}

// stripe is one counter bank. The trailing pad keeps adjacent stripes'
// scalar counters on distinct cache lines; the per-module slices are
// separate allocations and need no padding between stripes.
type stripe struct {
	accesses  []atomic.Int64 // per-module access counts
	conflicts atomic.Int64   // simulator batch conflicts (max load - 1 per batch)
	batches   atomic.Int64   // parallel batches accounted
	overflow  atomic.Int64   // accesses to modules >= len(accesses)
	_         [64]byte
}

// Domain aggregates the model-level counters of one process. Safe for
// arbitrary concurrency. A nil *Domain is a valid disabled domain: every
// method no-ops and Recorder returns a disabled Recorder, so callers
// wire it through unconditionally.
type Domain struct {
	maxModules int
	next       atomic.Uint32 // round-robin stripe cursor for Recorder
	stripes    [stripeCount]stripe

	families [familyCount]obsv.Histogram

	maxSpecs int
	specsMu  sync.RWMutex
	specs    map[string]*specStats

	boundChecks     atomic.Int64
	boundViolations atomic.Int64
	boundSkipped    atomic.Int64
}

// NewDomain builds a domain sized for maxModules per-module counters
// (DefaultMaxModules when <= 0).
func NewDomain(maxModules int) *Domain {
	if maxModules <= 0 {
		maxModules = DefaultMaxModules
	}
	d := &Domain{
		maxModules: maxModules,
		maxSpecs:   DefaultMaxSpecs,
		specs:      make(map[string]*specStats),
	}
	for i := range d.stripes {
		d.stripes[i].accesses = make([]atomic.Int64, maxModules)
	}
	return d
}

// Recorder returns a recorder bound to one stripe, dealt round-robin.
// Recorders are plain values (no allocation) and are cheap enough to
// create per request; a single recorder must not be shared by goroutines
// that record concurrently at high rate (they would contend on one
// stripe — correctness is unaffected). The nil domain returns a disabled
// Recorder whose methods no-op.
func (d *Domain) Recorder() Recorder {
	if d == nil {
		return Recorder{}
	}
	return Recorder{d: d, s: &d.stripes[d.next.Add(1)%stripeCount]}
}

// Recorder is the allocation-free write handle to one Domain stripe.
// The zero Recorder is disabled: every method no-ops.
type Recorder struct {
	d *Domain
	s *stripe
}

// Enabled reports whether records reach a live Domain.
func (r Recorder) Enabled() bool { return r.d != nil }

// Access records n accesses landing on the given module. Out-of-range
// modules count toward the aggregate overflow instead of a per-module
// series.
func (r Recorder) Access(module int, n int64) {
	if r.d == nil || n == 0 {
		return
	}
	if module < 0 || module >= r.d.maxModules {
		r.s.overflow.Add(n)
		return
	}
	r.s.accesses[module].Add(n)
}

// Batch records one parallel batch with the given conflict count
// (max module load - 1; the paper's per-access cost).
func (r Recorder) Batch(conflicts int64) {
	if r.d == nil {
		return
	}
	r.s.batches.Add(1)
	if conflicts > 0 {
		r.s.conflicts.Add(conflicts)
	}
}

// ObserveFamily records one template-cost observation: the conflict
// count of a costed instance (or family worst case) of the given family
// label (S|L|P|C). Unknown labels are ignored.
func (d *Domain) ObserveFamily(family string, conflicts int) {
	if d == nil {
		return
	}
	if i := FamilyIndex(family); i >= 0 {
		d.families[i].Observe(int64(conflicts))
	}
}

// ObserveSpec attributes one template-cost observation to a registry
// entry: the conflict count of a costed instance of the given family
// (S|L|P|C), keyed by the entry's normalized spec key. The table is
// bounded at DefaultMaxSpecs; observations beyond the bound land on the
// OverflowSpec key. Unknown family labels and empty keys are ignored.
func (d *Domain) ObserveSpec(key, family string, conflicts int) {
	if d == nil || key == "" {
		return
	}
	fi := FamilyIndex(family)
	if fi < 0 {
		return
	}
	st := d.spec(key)
	st.observations[fi].Add(1)
	if conflicts > 0 {
		st.conflicts[fi].Add(int64(conflicts))
	}
}

// spec returns (creating on first use) the stats slot for key, spilling
// to the reserved OverflowSpec slot once the table is full.
func (d *Domain) spec(key string) *specStats {
	d.specsMu.RLock()
	st := d.specs[key]
	d.specsMu.RUnlock()
	if st != nil {
		return st
	}
	d.specsMu.Lock()
	defer d.specsMu.Unlock()
	if st = d.specs[key]; st != nil {
		return st
	}
	// Reserve the last slot for the overflow key so attribution never
	// silently drops once the table saturates.
	if key != OverflowSpec && len(d.specs) >= d.maxSpecs-1 {
		key = OverflowSpec
		if st = d.specs[key]; st != nil {
			return st
		}
	}
	st = &specStats{}
	d.specs[key] = st
	return st
}

// SpecCounters returns the live per-family observation and conflict
// counters attributed to one spec key, and whether the key has a slot.
// The controller's classifier diffs successive reads to form windows.
func (d *Domain) SpecCounters(key string) (obs, conf [familyCount]int64, ok bool) {
	if d == nil {
		return obs, conf, false
	}
	d.specsMu.RLock()
	st := d.specs[key]
	d.specsMu.RUnlock()
	if st == nil {
		return obs, conf, false
	}
	for i := 0; i < familyCount; i++ {
		obs[i] = st.observations[i].Load()
		conf[i] = st.conflicts[i].Load()
	}
	return obs, conf, true
}

// SpecKeys returns the spec keys currently holding attribution slots,
// sorted, so the controller can enumerate live entries.
func (d *Domain) SpecKeys() []string {
	if d == nil {
		return nil
	}
	d.specsMu.RLock()
	keys := make([]string, 0, len(d.specs))
	for k := range d.specs {
		keys = append(keys, k)
	}
	d.specsMu.RUnlock()
	sort.Strings(keys)
	return keys
}

// CheckBound compares an observed conflict count against the closed-form
// theorem bound for its query, when one applies. Returns true when the
// observation violated an applicable bound (the counter that must stay
// zero). Queries outside the theorems' preconditions tick the skipped
// counter instead of silently passing.
func (d *Domain) CheckBound(q BoundQuery, observed int) (violated bool) {
	if d == nil {
		return false
	}
	bound, ok := ConflictBound(q)
	if !ok {
		d.boundSkipped.Add(1)
		return false
	}
	d.boundChecks.Add(1)
	if observed > bound {
		d.boundViolations.Add(1)
		return true
	}
	return false
}

// Counters reads the aggregate conflict and bound-monitor counters
// without building a full Snapshot: a handful of atomic loads, cheap
// enough for per-request use (the flight recorder stamps them onto
// every event). Nil-safe.
func (d *Domain) Counters() (conflicts, boundChecks, boundViolations int64) {
	if d == nil {
		return 0, 0, 0
	}
	for i := range d.stripes {
		conflicts += d.stripes[i].conflicts.Load()
	}
	return conflicts, d.boundChecks.Load(), d.boundViolations.Load()
}

// AccessTotals sums the per-module access counters (plus overflow)
// across stripes without the rest of Snapshot's work. Nil-safe.
func (d *Domain) AccessTotals() (accesses, overflow int64) {
	if d == nil {
		return 0, 0
	}
	for i := range d.stripes {
		st := &d.stripes[i]
		for mod := range st.accesses {
			accesses += st.accesses[mod].Load()
		}
		overflow += st.overflow.Load()
	}
	return accesses, overflow
}

// FamilySnapshot is the exported form of one family conflict histogram.
type FamilySnapshot struct {
	Family  string           `json:"family"`
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
	Mean    float64          `json:"mean"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // upper bound → count
}

// SpecFamily is one family's share of a spec's attributed mix.
type SpecFamily struct {
	Family       string `json:"family"`
	Observations int64  `json:"observations"`
	Conflicts    int64  `json:"conflicts"`
}

// SpecSnapshot is the exported per-spec template mix of one registry
// entry: which families its live traffic exercises and how many
// conflicts each family has accumulated.
type SpecSnapshot struct {
	Key      string       `json:"key"`
	Families []SpecFamily `json:"families"`
}

// DomainSnapshot is the exported form of a Domain: per-module loads, the
// derived load-balance gauges, family conflict histograms, per-spec mix
// attribution and the bound monitor counters.
type DomainSnapshot struct {
	// ModuleAccesses[i] is the access count of module i, trimmed to the
	// highest touched module.
	ModuleAccesses []int64 `json:"module_accesses"`
	// TotalAccesses sums ModuleAccesses (overflow excluded).
	TotalAccesses int64 `json:"total_accesses"`
	// Overflow counts accesses to modules beyond the counter bound.
	Overflow int64 `json:"overflow"`
	// ActiveModules is the number of modules with at least one access.
	ActiveModules int `json:"active_modules"`
	// MaxLoad / MaxModule locate the hottest module.
	MaxLoad   int64 `json:"max_load"`
	MaxModule int   `json:"max_module"`
	// MeanLoad is TotalAccesses / ActiveModules (0 when idle).
	MeanLoad float64 `json:"mean_load"`
	// LoadRatio is MaxLoad / MeanLoad — the observed analogue of the
	// paper's memory-load balance ratio; 1.0 is perfectly balanced.
	LoadRatio float64 `json:"load_ratio"`

	// Batches / Conflicts aggregate the simulator engines' accounting.
	Batches   int64 `json:"batches"`
	Conflicts int64 `json:"conflicts"`

	Families []FamilySnapshot `json:"families,omitempty"`

	// Specs attributes the family mix per registry entry (bounded table;
	// the "other" key absorbs overflow), sorted by key.
	Specs []SpecSnapshot `json:"specs,omitempty"`

	BoundChecks     int64 `json:"bound_checks"`
	BoundViolations int64 `json:"bound_violations"`
	BoundSkipped    int64 `json:"bound_checks_skipped"`
}

// Snapshot sums the stripes into one consistent-enough view (individual
// counters are read atomically; cross-counter skew during concurrent
// recording is acceptable). Nil-safe: a disabled domain reports zeroes.
func (d *Domain) Snapshot() DomainSnapshot {
	var s DomainSnapshot
	if d == nil {
		return s
	}
	loads := make([]int64, d.maxModules)
	for i := range d.stripes {
		st := &d.stripes[i]
		for mod := range st.accesses {
			loads[mod] += st.accesses[mod].Load()
		}
		s.Conflicts += st.conflicts.Load()
		s.Batches += st.batches.Load()
		s.Overflow += st.overflow.Load()
	}
	top := 0
	for mod, n := range loads {
		if n == 0 {
			continue
		}
		top = mod + 1
		s.ActiveModules++
		s.TotalAccesses += n
		if n > s.MaxLoad {
			s.MaxLoad = n
			s.MaxModule = mod
		}
	}
	s.ModuleAccesses = loads[:top]
	if s.ActiveModules > 0 {
		s.MeanLoad = float64(s.TotalAccesses) / float64(s.ActiveModules)
		s.LoadRatio = float64(s.MaxLoad) / s.MeanLoad
	}
	for i := range d.families {
		count, sum, buckets := d.families[i].Load()
		if count == 0 {
			continue
		}
		fs := FamilySnapshot{
			Family:  Families[i],
			Count:   count,
			Sum:     sum,
			Mean:    float64(sum) / float64(count),
			Buckets: make(map[string]int64),
		}
		for b, c := range buckets {
			if c > 0 {
				fs.Buckets[obsv.BucketLabel(b)] = c
			}
		}
		s.Families = append(s.Families, fs)
	}
	for _, key := range d.SpecKeys() {
		obs, conf, ok := d.SpecCounters(key)
		if !ok {
			continue
		}
		sp := SpecSnapshot{Key: key}
		for i := 0; i < familyCount; i++ {
			if obs[i] == 0 && conf[i] == 0 {
				continue
			}
			sp.Families = append(sp.Families, SpecFamily{
				Family:       Families[i],
				Observations: obs[i],
				Conflicts:    conf[i],
			})
		}
		if len(sp.Families) > 0 {
			s.Specs = append(s.Specs, sp)
		}
	}
	s.BoundChecks = d.boundChecks.Load()
	s.BoundViolations = d.boundViolations.Load()
	s.BoundSkipped = d.boundSkipped.Load()
	return s
}

// FamilyHist exposes the aggregate histogram for one family label (nil
// for unknown labels or a nil domain); the Prometheus renderer reads raw
// ordered buckets through it.
func (d *Domain) FamilyHist(family string) *obsv.Histogram {
	if d == nil {
		return nil
	}
	if i := FamilyIndex(family); i >= 0 {
		return &d.families[i]
	}
	return nil
}
