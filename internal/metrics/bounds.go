package metrics

// The bound monitor turns the paper's closed-form conflict theorems into
// an online invariant: every served template-cost observation is checked
// against the bound that applies to its (mapping, template) pair, and a
// violation ticks a counter that must stay zero.
//
// Soundness rests on a containment argument. template.Instance.Validate
// requires instances to fit entirely inside the tree, and per-color node
// counts are monotone under subsets, so an instance's conflict count is
// bounded by the family cost of ANY family whose some member contains
// it. For the canonical COLOR mapping of Section 4 (parameter m, with
// K = 2^(m-1)-1, N = 2^(m-1)+m-1, M = 2^m-1 modules):
//
//   - every valid S(s) with s <= M is contained in a valid S(M) member
//     once the tree has at least m levels (anchor the m-level subtree at
//     the ancestor max(0, level+levels(s)-m) levels up);
//   - every valid P(s) with s <= M is contained in a valid P(M) member
//     once the tree has at least M levels (extend the path downward to a
//     descendant so the M-node window covers it);
//   - identically for the conflict-free sizes K (subtrees, needing m-1
//     levels) and N (paths, needing N levels) of Theorem 3.
//
// Theorem 4 bounds S(M)/P(M) family costs by 1, Theorem 3 gives 0 for
// S(K)/P(N), and Theorem 6 bounds any composite C(D, c) by 4*ceil(D/M)+c
// with no height precondition. L-template observations and non-canonical
// mappings have no closed form here and are reported as skipped.

// BoundQuery identifies one observation for the bound monitor.
type BoundQuery struct {
	// Alg is the mapping algorithm name; only "color" (the canonical
	// Section 4 parameterization) has closed-form bounds.
	Alg string
	// M is the paper's m parameter of the canonical COLOR mapping
	// (2^m - 1 memory modules).
	M int
	// Levels is the number of levels of the mapped tree.
	Levels int
	// Kind is the template family: "S", "L", "P", or "C" for composite.
	Kind string
	// Size is the elementary instance (or family worst-case) size in
	// nodes. Unused for composites.
	Size int64
	// Total and Parts are the composite's D and c. Unused for
	// elementary kinds.
	Total int64
	Parts int
}

// CanonicalSizes returns the canonical COLOR template parameters of
// Section 4 for parameter m: K = 2^(m-1)-1, N = 2^(m-1)+m-1, and the
// module count M = 2^m-1.
func CanonicalSizes(m int) (k, n, modules int64) {
	if m < 1 || m > 62 {
		return 0, 0, 0
	}
	half := int64(1) << (m - 1)
	return half - 1, half + int64(m) - 1, 2*half - 1
}

// ConflictBound returns the tightest applicable closed-form conflict
// bound for the query, or ok=false when no theorem covers it (unknown
// algorithm, L templates, oversized instances, or trees too shallow for
// the containment argument).
func ConflictBound(q BoundQuery) (bound int, ok bool) {
	if q.Alg != "color" {
		return 0, false
	}
	k, n, modules := CanonicalSizes(q.M)
	if modules == 0 {
		return 0, false
	}
	switch q.Kind {
	case "C":
		// Theorem 6: C(D, c) costs at most 4*ceil(D/M) + c.
		if q.Total < 1 || q.Parts < 1 {
			return 0, false
		}
		ceil := (q.Total + modules - 1) / modules
		b := 4*ceil + int64(q.Parts)
		const maxInt = int64(^uint(0) >> 1)
		if b > maxInt {
			return 0, false
		}
		return int(b), true
	case "S":
		if q.Size < 1 {
			return 0, false
		}
		// Theorem 3: S(K) is conflict-free.
		if q.Size <= k && q.Levels >= q.M-1 {
			return 0, true
		}
		// Theorem 4: S(M) costs at most 1.
		if q.Size <= modules && q.Levels >= q.M {
			return 1, true
		}
		return 0, false
	case "P":
		if q.Size < 1 {
			return 0, false
		}
		// Theorem 3: P(N) is conflict-free.
		if q.Size <= n && int64(q.Levels) >= n {
			return 0, true
		}
		// Theorem 4: P(M) costs at most 1.
		if q.Size <= modules && int64(q.Levels) >= modules {
			return 1, true
		}
		return 0, false
	default:
		// L templates (and unknown kinds) have no closed form here.
		return 0, false
	}
}
