package metrics_test

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obsv"
)

func TestExpoWriterFormat(t *testing.T) {
	var b strings.Builder
	e := metrics.NewExpo(&b)
	e.Counter("pmsd_reqs_total", []metrics.Label{{Name: "endpoint", Value: "color"}}, 42)
	e.Counter("pmsd_reqs_total", []metrics.Label{{Name: "endpoint", Value: "simulate"}}, 7)
	e.Gauge("pmsd_ratio", nil, 1.25)
	e.GaugeInt("pmsd_depth", nil, 3)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE pmsd_reqs_total counter",
		`pmsd_reqs_total{endpoint="color"} 42`,
		`pmsd_reqs_total{endpoint="simulate"} 7`,
		"# TYPE pmsd_ratio gauge",
		"pmsd_ratio 1.25",
		"# TYPE pmsd_depth gauge",
		"pmsd_depth 3",
		"",
	}, "\n")
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n got: %q\nwant: %q", b.String(), want)
	}
}

func TestExpoHistogramCumulative(t *testing.T) {
	var h obsv.Histogram
	h.Observe(0) // bucket 0 (le 0)
	h.Observe(1) // bucket 1 (le 1)
	h.Observe(1)
	h.Observe(6) // bucket 3 (le 7)
	var b strings.Builder
	e := metrics.NewExpo(&b)
	e.Histogram("x_conflicts", []metrics.Label{{Name: "family", Value: "S"}}, &h)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE x_conflicts histogram",
		`x_conflicts_bucket{family="S",le="0"} 1`,
		`x_conflicts_bucket{family="S",le="1"} 3`,
		`x_conflicts_bucket{family="S",le="7"} 4`,
		`x_conflicts_bucket{family="S",le="+Inf"} 4`,
		`x_conflicts_sum{family="S"} 8`,
		`x_conflicts_count{family="S"} 4`,
		"",
	}, "\n")
	if b.String() != want {
		t.Fatalf("histogram exposition mismatch:\n got: %q\nwant: %q", b.String(), want)
	}
}

func TestParseExpositionRoundTrip(t *testing.T) {
	d := metrics.NewDomain(16)
	r := d.Recorder()
	r.Access(0, 5)
	r.Access(3, 10)
	r.Batch(1)
	d.ObserveFamily("P", 1)
	d.CheckBound(metrics.BoundQuery{Alg: "color", M: 3, Levels: 16, Kind: "S", Size: 7}, 1)

	var b strings.Builder
	e := metrics.NewExpo(&b)
	metrics.WriteDomain(e, "pmsd", d)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}

	sc, err := metrics.ParseExposition(b.String())
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\nexposition:\n%s", err, b.String())
	}
	if v, ok := sc.Value("pmsd_module_accesses_total", metrics.Label{Name: "module", Value: "3"}); !ok || v != 10 {
		t.Fatalf("module 3 accesses = %v,%v, want 10", v, ok)
	}
	if v, ok := sc.Value("pmsd_module_load_ratio"); !ok || v != 10.0/7.5 {
		t.Fatalf("load ratio = %v,%v", v, ok)
	}
	if v, ok := sc.Value("pmsd_bound_checks_total"); !ok || v != 1 {
		t.Fatalf("bound checks = %v,%v", v, ok)
	}
	if v, ok := sc.Value("pmsd_bound_violations_total"); !ok || v != 0 {
		t.Fatalf("bound violations = %v,%v, want present and 0", v, ok)
	}
	if v, ok := sc.Value("pmsd_template_conflicts_count", metrics.Label{Name: "family", Value: "P"}); !ok || v != 1 {
		t.Fatalf("P conflicts count = %v,%v", v, ok)
	}
	if v, ok := sc.Value("pmsd_template_conflicts_bucket",
		metrics.Label{Name: "family", Value: "P"}, metrics.Label{Name: "le", Value: "+Inf"}); !ok || v != 1 {
		t.Fatalf("P +Inf bucket = %v,%v", v, ok)
	}
}

func TestParseExpositionLabelEscapes(t *testing.T) {
	sc, err := metrics.ParseExposition("m{a=\"x\\\"y\\\\z\\n\"} 4\n")
	if err != nil {
		t.Fatal(err)
	}
	s := sc.Series("m")
	if len(s) != 1 || s[0].Label("a") != "x\"y\\z\n" {
		t.Fatalf("escape parse got %+v", s)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"no_value\n",
		"x{unterminated 3\n",
		"x{a=b} 3\n",
		"x NaNope\n",
	} {
		if _, err := metrics.ParseExposition(bad); err == nil {
			t.Errorf("ParseExposition(%q) accepted malformed input", bad)
		}
	}
}

func TestParseExpositionSkipsCommentsAndTimestamps(t *testing.T) {
	sc, err := metrics.ParseExposition("# HELP x y\n# TYPE x counter\nx 3 1700000000\n\n+Inf_is_a_value 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := sc.Value("x"); !ok || v != 3 {
		t.Fatalf("x = %v,%v", v, ok)
	}
	if len(sc.Names()) != 2 {
		t.Fatalf("names = %v", sc.Names())
	}
}

func TestWriteDomainNilStableSchema(t *testing.T) {
	var b strings.Builder
	e := metrics.NewExpo(&b)
	metrics.WriteDomain(e, "pmsd", nil)
	sc, err := metrics.ParseExposition(b.String())
	if err != nil {
		t.Fatal(err)
	}
	// The invariant counter must be present (and zero) even when domain
	// accounting is disabled, so alerts never fire on a missing series.
	if v, ok := sc.Value("pmsd_bound_violations_total"); !ok || v != 0 {
		t.Fatalf("disabled domain: bound_violations = %v,%v", v, ok)
	}
	if v, ok := sc.Value("pmsd_module_load_ratio"); !ok || v != 0 {
		t.Fatalf("disabled domain: load ratio = %v,%v", v, ok)
	}
}
