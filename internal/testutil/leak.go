// Package testutil holds small shared test helpers. The only resident
// today is the goroutine-leak check used around the serving layer's
// drain path and the client's circuit-breaker and hedged-read
// cancellation paths.
package testutil

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// CheckGoroutines snapshots the goroutine count and returns a function
// to defer: it retries for up to two seconds while runtime-internal
// goroutines (timer wheels, finished HTTP keep-alives, exiting workers)
// wind down, and fails the test with a full goroutine dump if the count
// never returns to the baseline (plus a small tolerance for goroutines
// the runtime parks lazily).
//
//	defer testutil.CheckGoroutines(t)()
//
// Callers must stop whatever they started (shut servers down, close
// idle connections) before the deferred check runs.
func CheckGoroutines(t testing.TB) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		const tolerance = 2
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base+tolerance {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		var buf bytes.Buffer
		_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
		t.Errorf("goroutine leak: %d goroutines, baseline %d\n%s", n, base, buf.String())
	}
}
