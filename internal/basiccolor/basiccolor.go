// Package basiccolor implements the paper's BASIC-COLOR algorithm
// (Section 3.1, Fig. 2): coloring a complete binary tree B of N levels
// with N + K - k colors, where K = 2^k - 1, so that every complete subtree
// of size K and every leaf-to-root path (of N nodes) is accessed without
// memory conflicts (Theorem 1), with at most one conflict on any run of K
// consecutive nodes within a level (Lemma 2). Theorem 2 shows N + K - k
// colors is optimal.
//
// The color set {0, …, N+K-k-1} is split into
//
//	Σ = {0, …, K-1}          assigned bijectively to the top k levels, and
//	Γ = {K, …, N+K-k-1}      one fresh color per remaining level.
//
// Each level j ≥ k is partitioned into blocks of 2^(k-1) nodes — the leaves
// of the size-K subtree rooted at the block's (k-1)-st ancestor v1. The
// first 2^(k-1)-1 nodes of a block copy, in level order, the colors of the
// interior of the size-K subtree rooted at v1's sibling v2; the last node
// of the block takes the fresh per-level Γ color.
//
// Note on the paper text: Fig. 2's prose restates the block rule with an
// index formula, v(2^r(h+(-1)^(h mod 2))+s, j-k+r+1), that is off by one
// level relative to both the "(i+1)-st node of S_2 in level order" rule of
// line 7 and the bijection required by the proof of Lemma 1. This package
// implements the level-order rule; the exhaustive tests in this package
// and the E1 experiment verify the claimed conflict-freeness.
package basiccolor

import (
	"fmt"

	"repro/internal/coloring"
	"repro/internal/tree"
)

// Params carries the (N, K) parameterization of BASIC-COLOR.
type Params struct {
	Levels        int // N: number of levels of the tree being colored
	SubtreeLevels int // k: subtree template has K = 2^k - 1 nodes
}

// Validate checks the constraint N ≥ k required by the algorithm.
func (p Params) Validate() error {
	if p.SubtreeLevels < 1 {
		return fmt.Errorf("basiccolor: k = %d must be at least 1", p.SubtreeLevels)
	}
	if p.Levels < p.SubtreeLevels {
		return fmt.Errorf("basiccolor: N = %d must be at least k = %d", p.Levels, p.SubtreeLevels)
	}
	if p.Levels > 62 {
		return fmt.Errorf("basiccolor: N = %d too large", p.Levels)
	}
	return nil
}

// K returns the subtree template size 2^k - 1.
func (p Params) K() int64 { return tree.SubtreeSize(p.SubtreeLevels) }

// Colors returns the number of colors used: N + K - k.
func (p Params) Colors() int {
	return p.Levels + int(p.K()) - p.SubtreeLevels
}

// Color runs BASIC-COLOR(B, N, K) over a full N-level tree and returns the
// materialized mapping. Time and space are O(2^N), matching the paper.
func Color(p Params) (*coloring.ArrayMapping, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := tree.New(p.Levels)
	arr := coloring.NewArrayMapping(t, p.Colors(), fmt.Sprintf("BASIC-COLOR(N=%d,k=%d)", p.Levels, p.SubtreeLevels))
	k := p.SubtreeLevels

	// Phase 1: top k levels get distinct colors of Σ: v(i,j) ↦ 2^j + i - 1.
	top := k
	if top > t.Levels() {
		top = t.Levels()
	}
	for j := 0; j < top; j++ {
		for i := int64(0); i < t.LevelWidth(j); i++ {
			arr.Set(tree.V(i, j), int(tree.Pow2(j)-1+i))
		}
	}

	// Phase 2 (BOTTOM): levels k..N-1, blockwise, with the fresh Γ color
	// K + (j-k) for the last node of every block of level j.
	gamma := make([]int, p.Levels-k)
	for idx := range gamma {
		gamma[idx] = int(p.K()) + idx
	}
	Bottom(arr, tree.V(0, 0), p, gamma)
	return arr, nil
}

// Bottom colors levels root.Level+k … root.Level+p.Levels-1 of the N-level
// subtree rooted at root inside arr, assuming the subtree's top k levels
// are already colored. gamma supplies the per-level list Z of Fig. 2: the
// last node of every block at subtree-relative level ℓ receives
// gamma[ℓ-k]. gamma must have length p.Levels - p.SubtreeLevels.
//
// Bottom is shared by BASIC-COLOR (fresh Γ colors) and by the COLOR
// algorithm of Section 3.2 (Γ(i,j) lists drawn from ancestor path colors).
// Levels that fall outside arr's tree are skipped, which implements the
// paper's "dummy levels" truncation.
func Bottom(arr *coloring.ArrayMapping, root tree.Node, p Params, gamma []int) {
	k := p.SubtreeLevels
	if len(gamma) != p.Levels-k {
		panic(fmt.Sprintf("basiccolor: gamma has %d colors, want %d", len(gamma), p.Levels-k))
	}
	t := arr.Tree()
	width := tree.Pow2(k - 1) // block width 2^(k-1)
	for ell := k; ell < p.Levels; ell++ {
		level := root.Level + ell
		if level >= t.Levels() {
			return
		}
		firstIdx, count := root.DescendantsAt(ell)
		blocks := count / width
		for h := int64(0); h < blocks; h++ {
			blockFirst := firstIdx + h*width
			// v1 is the (k-1)-st ancestor of the block; v2 its sibling; the
			// block's interior colors copy S2 = subtree(v2, k) in level
			// order.
			v1 := tree.V(blockFirst, level).Ancestor(k - 1)
			v2 := v1.Sibling()
			pos := int64(0) // level-order position within S2
			for d := 0; d < k-1 && pos < width-1; d++ {
				srcFirst, srcCount := v2.DescendantsAt(d)
				for q := int64(0); q < srcCount && pos < width-1; q++ {
					src := tree.V(srcFirst+q, v2.Level+d)
					arr.Colors[tree.V(blockFirst+pos, level).HeapIndex()] = arr.Colors[src.HeapIndex()]
					pos++
				}
			}
			arr.Set(tree.V(blockFirst+width-1, level), gamma[ell-k])
		}
	}
}

// Retrieve computes the color of a single node without materializing the
// whole tree, in O(N - k) time (the paper's RETRIEVING cost without the UP
// table): it follows the inheritance chain up the tree until reaching a
// directly colored node.
func Retrieve(p Params, n tree.Node) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if !n.Valid() || n.Level >= p.Levels {
		return 0, fmt.Errorf("basiccolor: node %v outside %d-level tree", n, p.Levels)
	}
	k := p.SubtreeLevels
	for {
		if n.Level < k {
			return int(tree.Pow2(n.Level) - 1 + n.Index), nil
		}
		var last bool
		n, last = InheritanceSource(k, n)
		if last {
			return int(tree.SubtreeSize(k)) + n.Level - k, nil
		}
	}
}

// InheritanceSource returns, for a node at level ≥ k, either the node it
// inherits its color from (last=false) or, when the node is the final node
// of its block, the node itself with last=true (the caller then applies
// the Γ rule).
func InheritanceSource(k int, n tree.Node) (src tree.Node, last bool) {
	width := tree.Pow2(k - 1)
	posInBlock := n.Index % width
	if posInBlock == width-1 {
		return n, true
	}
	// Level-order position posInBlock within S2 (0 = the root v2).
	v2 := n.Ancestor(k - 1).Sibling()
	return tree.LevelOrderNode(v2, posInBlock), false
}

// UPEntry is one entry of the paper's UP table: the node a given node
// inherits its color from, or a direct-color marker.
type UPEntry struct {
	// Direct is true when the node is colored directly (top k levels or
	// block-last Γ rule), i.e. the paper's '*' mark.
	Direct bool
	// Source is the inheritance source when Direct is false.
	Source tree.Node
}

// UPTable is the PREBASIC-COLOR preprocessing result: for each node, where
// its color comes from. With it, one inheritance step is a table lookup
// and full retrieval is O(1) amortized per step chain... the paper uses it
// to cut single-node retrieval to constant time by storing, for every
// node, its ultimate source; UPTable stores both the single-step table
// (Steps) and the fully resolved colors (Resolved) so RetrieveFast is O(1).
type UPTable struct {
	p        Params
	steps    []UPEntry
	resolved []int32
}

// Preprocess builds the UP table for the given parameters in O(2^N) time
// and space (the paper's PREBASIC-COLOR).
func Preprocess(p Params) (*UPTable, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := tree.New(p.Levels)
	up := &UPTable{
		p:        p,
		steps:    make([]UPEntry, t.Nodes()),
		resolved: make([]int32, t.Nodes()),
	}
	k := p.SubtreeLevels
	for j := 0; j < t.Levels(); j++ {
		for i := int64(0); i < t.LevelWidth(j); i++ {
			n := tree.V(i, j)
			h := n.HeapIndex()
			if j < k {
				up.steps[h] = UPEntry{Direct: true}
				up.resolved[h] = int32(tree.Pow2(j) - 1 + i)
				continue
			}
			src, isLast := InheritanceSource(k, n)
			if isLast {
				up.steps[h] = UPEntry{Direct: true}
				up.resolved[h] = int32(int(tree.SubtreeSize(k)) + j - k)
				continue
			}
			up.steps[h] = UPEntry{Source: src}
			up.resolved[h] = up.resolved[src.HeapIndex()]
		}
	}
	return up, nil
}

// Step returns the single-step UP entry for n (the paper's UP[v]).
func (u *UPTable) Step(n tree.Node) UPEntry { return u.steps[n.HeapIndex()] }

// RetrieveFast returns the color of n in O(1) using the preprocessed
// table.
func (u *UPTable) RetrieveFast(n tree.Node) int { return int(u.resolved[n.HeapIndex()]) }

// Params returns the parameters the table was built for.
func (u *UPTable) Params() Params { return u.p }
