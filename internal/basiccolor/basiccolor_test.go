package basiccolor

import (
	"testing"

	"repro/internal/coloring"
	"repro/internal/template"
	"repro/internal/tree"
)

// sweep enumerates the (k, N) parameter grid used by the exhaustive tests.
// Trees up to 2^14 nodes keep the full-family enumeration fast.
func sweep() []Params {
	var ps []Params
	for k := 1; k <= 5; k++ {
		for N := k; N <= 14; N++ {
			ps = append(ps, Params{Levels: N, SubtreeLevels: k})
		}
	}
	return ps
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Levels: 3, SubtreeLevels: 0},
		{Levels: 2, SubtreeLevels: 3},
		{Levels: 63, SubtreeLevels: 2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", p)
		}
	}
	if err := (Params{Levels: 5, SubtreeLevels: 3}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestParamsDerived(t *testing.T) {
	p := Params{Levels: 7, SubtreeLevels: 3}
	if p.K() != 7 {
		t.Errorf("K = %d", p.K())
	}
	if p.Colors() != 7+7-3 {
		t.Errorf("Colors = %d", p.Colors())
	}
}

func TestColorRejectsBadParams(t *testing.T) {
	if _, err := Color(Params{Levels: 1, SubtreeLevels: 2}); err == nil {
		t.Error("expected error")
	}
}

// Worked example from the design review: k=2, K=3, N=3 over a 3-level tree.
func TestColorSmallKnownValues(t *testing.T) {
	arr, err := Color(Params{Levels: 3, SubtreeLevels: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[tree.Node]int{
		tree.V(0, 0): 0,
		tree.V(0, 1): 1, tree.V(1, 1): 2,
		tree.V(0, 2): 2, tree.V(1, 2): 3, tree.V(2, 2): 1, tree.V(3, 2): 3,
	}
	for n, c := range want {
		if got := arr.Color(n); got != c {
			t.Errorf("color(%v) = %d, want %d", n, got, c)
		}
	}
}

// Theorem 1: BASIC-COLOR is (N+K-k)-CF on S(K) and P(N). Exhaustive over
// the sweep grid.
func TestTheorem1ConflictFree(t *testing.T) {
	for _, p := range sweep() {
		arr, err := Color(p)
		if err != nil {
			t.Fatal(err)
		}
		if arr.Modules() != p.Colors() {
			t.Fatalf("%+v: modules %d, want %d", p, arr.Modules(), p.Colors())
		}
		sf, err := template.NewFamily(arr.Tree(), template.Subtree, p.K())
		if err != nil {
			t.Fatal(err)
		}
		if cost, witness := coloring.FamilyCost(arr, sf); cost != 0 {
			t.Errorf("%+v: S(K) cost %d at %v, want 0", p, cost, witness)
		}
		pf, err := template.NewFamily(arr.Tree(), template.Path, int64(p.Levels))
		if err != nil {
			t.Fatal(err)
		}
		if cost, witness := coloring.FamilyCost(arr, pf); cost != 0 {
			t.Errorf("%+v: P(N) cost %d at %v, want 0", p, cost, witness)
		}
	}
}

// Lemma 1: the larger TP(K, j) families are conflict-free for every j.
func TestLemma1TPConflictFree(t *testing.T) {
	for _, p := range sweep() {
		if p.Levels > 11 { // TP check is per anchor level; keep it fast
			continue
		}
		arr, err := Color(p)
		if err != nil {
			t.Fatal(err)
		}
		tr := arr.Tree()
		c := coloring.NewCounter(arr.Modules())
		for anchor := 0; anchor < tr.Levels(); anchor++ {
			fam, err := template.TPFamily(tr, p.SubtreeLevels, anchor)
			if err != nil {
				t.Fatal(err)
			}
			for _, tp := range fam {
				c.Reset()
				for _, n := range tp.Nodes(tr) {
					c.Add(arr.Color(n))
				}
				if c.Conflicts() != 0 {
					t.Fatalf("%+v: TP at %v has %d conflicts", p, tp.Root, c.Conflicts())
				}
			}
		}
	}
}

// Lemma 2: cost at most 1 on L(K).
func TestLemma2LevelCostAtMostOne(t *testing.T) {
	for _, p := range sweep() {
		if p.K() > tree.New(p.Levels).LevelWidth(p.Levels-1) {
			continue // no L(K) instance fits
		}
		arr, err := Color(p)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := template.NewFamily(arr.Tree(), template.Level, p.K())
		if err != nil {
			t.Fatal(err)
		}
		if cost, witness := coloring.FamilyCost(arr, lf); cost > 1 {
			t.Errorf("%+v: L(K) cost %d at %v, want ≤ 1", p, cost, witness)
		}
	}
}

// The mapping must use exactly N+K-k colors, all of them.
func TestAllColorsUsed(t *testing.T) {
	for _, p := range sweep() {
		arr, err := Color(p)
		if err != nil {
			t.Fatal(err)
		}
		used := make([]bool, arr.Modules())
		for _, c := range arr.Colors {
			used[c] = true
		}
		for col, ok := range used {
			if !ok && p.Levels > p.SubtreeLevels {
				t.Errorf("%+v: color %d never used", p, col)
			}
		}
		if err := arr.Validate(); err != nil {
			t.Errorf("%+v: %v", p, err)
		}
	}
}

// Retrieve must agree with the forward coloring on every node.
func TestRetrieveMatchesForward(t *testing.T) {
	for _, p := range sweep() {
		arr, err := Color(p)
		if err != nil {
			t.Fatal(err)
		}
		tr := arr.Tree()
		for j := 0; j < tr.Levels(); j++ {
			for i := int64(0); i < tr.LevelWidth(j); i++ {
				n := tree.V(i, j)
				got, err := Retrieve(p, n)
				if err != nil {
					t.Fatal(err)
				}
				if want := arr.Color(n); got != want {
					t.Fatalf("%+v: Retrieve(%v) = %d, forward %d", p, n, got, want)
				}
			}
		}
	}
}

func TestRetrieveErrors(t *testing.T) {
	p := Params{Levels: 4, SubtreeLevels: 2}
	if _, err := Retrieve(p, tree.V(0, 4)); err == nil {
		t.Error("node outside tree should fail")
	}
	if _, err := Retrieve(p, tree.V(-1, 2)); err == nil {
		t.Error("invalid node should fail")
	}
	if _, err := Retrieve(Params{Levels: 1, SubtreeLevels: 2}, tree.V(0, 0)); err == nil {
		t.Error("invalid params should fail")
	}
}

// The UP table's resolved colors and single-step entries must agree with
// forward coloring and the chain structure.
func TestUPTableMatchesForward(t *testing.T) {
	for _, p := range sweep() {
		if p.Levels > 12 {
			continue
		}
		arr, err := Color(p)
		if err != nil {
			t.Fatal(err)
		}
		up, err := Preprocess(p)
		if err != nil {
			t.Fatal(err)
		}
		if up.Params() != p {
			t.Fatal("Params accessor wrong")
		}
		tr := arr.Tree()
		for j := 0; j < tr.Levels(); j++ {
			for i := int64(0); i < tr.LevelWidth(j); i++ {
				n := tree.V(i, j)
				if got, want := up.RetrieveFast(n), arr.Color(n); got != want {
					t.Fatalf("%+v: RetrieveFast(%v) = %d, want %d", p, n, got, want)
				}
				step := up.Step(n)
				if !step.Direct {
					// The source must be strictly higher and hold the same color.
					if step.Source.Level >= n.Level {
						t.Fatalf("%+v: UP[%v] = %v does not climb", p, n, step.Source)
					}
					if arr.Color(step.Source) != arr.Color(n) {
						t.Fatalf("%+v: UP[%v] = %v has different color", p, n, step.Source)
					}
				}
			}
		}
	}
}

func TestPreprocessRejectsBadParams(t *testing.T) {
	if _, err := Preprocess(Params{Levels: 0, SubtreeLevels: 1}); err == nil {
		t.Error("expected error")
	}
}

// Degenerate parameterizations: k = 1 blocks have width 1, so every node
// below the root takes a Γ color; k = N means no BOTTOM phase at all.
func TestDegenerateParams(t *testing.T) {
	// k = 1: levels below the root each use one fresh color; paths are CF.
	arr, err := Color(Params{Levels: 6, SubtreeLevels: 1})
	if err != nil {
		t.Fatal(err)
	}
	pf, err := template.NewFamily(arr.Tree(), template.Path, 6)
	if err != nil {
		t.Fatal(err)
	}
	if cost, _ := coloring.FamilyCost(arr, pf); cost != 0 {
		t.Errorf("k=1 path cost = %d", cost)
	}

	// k = N: phase 1 colors everything distinctly.
	arr, err = Color(Params{Levels: 4, SubtreeLevels: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range arr.Colors {
		if seen[int(c)] {
			t.Fatal("k=N coloring must be a bijection")
		}
		seen[int(c)] = true
	}
}

// Theorem 2 (upper-bound side sanity): TP(K, N-k) instances have exactly
// N+K-k nodes and are conflict-free, i.e. BASIC-COLOR uses each of its
// N+K-k colors exactly once on them.
func TestTPAtCriticalLevelIsRainbow(t *testing.T) {
	for _, p := range sweep() {
		if p.Levels < 2*p.SubtreeLevels || p.Levels > 12 {
			continue
		}
		arr, err := Color(p)
		if err != nil {
			t.Fatal(err)
		}
		tr := arr.Tree()
		anchor := p.Levels - p.SubtreeLevels
		fam, err := template.TPFamily(tr, p.SubtreeLevels, anchor)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range fam {
			nodes := tp.Nodes(tr)
			if len(nodes) != p.Colors() {
				t.Fatalf("%+v: TP size %d != colors %d", p, len(nodes), p.Colors())
			}
			seen := map[int]bool{}
			for _, n := range nodes {
				c := arr.Color(n)
				if seen[c] {
					t.Fatalf("%+v: TP at %v repeats color %d", p, tp.Root, c)
				}
				seen[c] = true
			}
		}
	}
}

func BenchmarkColorN14K3(b *testing.B) {
	p := Params{Levels: 14, SubtreeLevels: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Color(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrieve(b *testing.B) {
	p := Params{Levels: 20, SubtreeLevels: 4}
	n := tree.V(123456, 19)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Retrieve(p, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrieveFast(b *testing.B) {
	p := Params{Levels: 16, SubtreeLevels: 4}
	up, err := Preprocess(p)
	if err != nil {
		b.Fatal(err)
	}
	n := tree.V(12345, 15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		up.RetrieveFast(n)
	}
}
