// Command treebench runs the paper-reproduction experiment suite and
// prints each result table (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	treebench [-quick] [-markdown] [-run E4,E5] [-list] [-cpuprofile out.prof]
//
// Flags:
//
//	-quick       use the reduced test-scale parameters
//	-markdown    emit GitHub-flavored markdown (for EXPERIMENTS.md)
//	-run         comma-separated experiment IDs to run (default: all)
//	-list        list the experiments and exit
//	-cpuprofile  write a CPU profile of the experiment runs to this file
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "use reduced test-scale parameters")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	run := flag.String("run", "", "comma-separated experiment IDs (default all)")
	list := flag.Bool("list", false, "list experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	specs := experiments.All()
	if *list {
		for _, s := range specs {
			fmt.Printf("%-3s %-26s %s\n", s.ID, s.Source, s.Claim)
		}
		return
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	scale := experiments.Default()
	if *quick {
		scale = experiments.Quick()
	}

	for _, s := range specs {
		if len(want) > 0 && !want[s.ID] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", s.ID, s.Source)
		tables, err := s.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", s.ID, err)
			os.Exit(1)
		}
		for _, tb := range tables {
			if *markdown {
				fmt.Println(tb.Markdown())
			} else {
				fmt.Println(tb.String())
			}
		}
	}
}
