// Command pmsd serves the paper's tree→module mappings over HTTP/JSON:
// node→module retrieval (/v1/color, with server-side batching of
// concurrent singleton lookups), template conflict costs
// (/v1/template-cost) and bounded trace replay through the parallel
// memory system simulator (/v1/simulate), with /debug/vars metrics and
// /debug/pprof profiling built in.
//
// Serve mode:
//
//	pmsd -addr :8080 -workers 8 -max-inflight 512 -flush 500us
//
// SIGINT/SIGTERM trigger a graceful drain: accepted requests complete,
// new ones are refused.
//
// Load-generator mode benchmarks the serving path end to end over real
// HTTP, once with coalescing and once with batch size 1, and writes the
// comparison as a JSON snapshot:
//
//	pmsd -loadgen -requests 20000 -clients 32 -dist zipf -bench-out BENCH_pr2.json
//
// Chaos mode wraps the serving path in the deterministic fault
// injector (internal/faultinject): latency spikes, 5xx/429 bursts,
// connection resets, slow-body drips and partial batch failures, all
// keyed by -chaos-seed so a run can be replayed exactly:
//
//	pmsd -chaos -chaos-seed 42 -chaos-latency 0.1 -chaos-reset 0.02
//
// Chaos-bench mode drives the resilient client (internal/client)
// against an in-process chaotic server twice — hedging off, then on —
// under the identical fault schedule, and records the tail-latency
// comparison:
//
//	pmsd -chaos-bench -chaos-seed 42 -chaos-latency 0.1 -bench-out BENCH_pr3.json
//
// Request tracing samples per-request stage spans (admission wait,
// coalesce wait, registry acquire, batch compute, response write) into
// GET /debug/requests; -trace-sample sets the sampling rate (0 turns it
// off) and -trace-slowest sizes the slowest-trace buffer. Trace-bench
// mode measures what the tracing layer itself costs by running the
// loadgen workload with tracing off, sampled at 0.01, and at full
// sampling:
//
//	pmsd -trace-bench -requests 12000 -clients 32 -dist zipf -bench-out BENCH_pr4.json
//
// Domain metrics (per-module access accounting, template-family conflict
// histograms, the theorem-bound monitor) are on by default and rendered
// by GET /metrics in Prometheus text format alongside /debug/vars;
// -no-domain-metrics turns the accounting layer off. Metrics-bench mode
// prices that layer by running the template-cost workload with
// accounting off and on:
//
//	pmsd -metrics-bench -requests 12000 -clients 32 -dist zipf -bench-out BENCH_pr5.json
//
// Retrieval-bench mode prices the ColorBatch kernels against the
// per-node Mapping.Color interface path, in-process per (alg, batch
// size) and then on the real serving path with the kernel enabled and
// disabled (the kernel metrics series and batch_compute stage
// histograms are the evidence trail):
//
//	pmsd -retrieval-bench -levels 20 -bench-out BENCH_pr6.json
//
// With -store-dir the mapping registry gains a disk tier: evicted
// table-backed mappings spill into a crash-safe mmap store instead of
// being discarded, registry misses consult the store before paying a
// materialization, and a restart with the same directory warm-starts by
// pre-admitting the -store-warm hottest specs from the manifest:
//
//	pmsd -addr :8080 -store-dir /var/lib/pmsd -store-budget 1024 -store-warm 64
//
// Store-bench mode prices the tier: cold materialization vs warm
// disk acquire per spec (min-of-reps, headlined by the largest COLOR
// retriever table) plus the tier hit ratio under a Zipf spec mix
// through a deliberately tiny memory tier:
//
//	pmsd -store-bench -bench-out BENCH_pr7.json
//
// Trace record/replay: -record FILE captures every mutating request
// (method, path, tenant, body) into a checksummed PMSTRC1 trace file on
// shutdown; -replay FILE replays a trace sequentially against a fresh
// in-process deterministic server (coalescing and trace sampling off)
// and prints the response digest — the same trace always yields the
// same digest. Replay-bench mode records a Zipf-skewed multi-tenant
// mixed workload (color / template-cost / range / heap endpoints),
// replays it twice and verifies the digests match bit for bit with the
// theorem-bound monitor at zero violations:
//
//	pmsd -addr :8080 -record /tmp/run.pmstrc
//	pmsd -replay /tmp/run.pmstrc
//	pmsd -replay-bench -requests 4000 -tenants 8 -bench-out BENCH_pr8.json
//
// The adaptive mapping controller (-controller) closes the loop on the
// paper's COLOR vs LABEL-TREE vs arithmetic trade-off per registry
// entry: it classifies each entry's live template mix, shadow-scores
// candidate mappings by replaying sampled traffic through the batch
// kernels, and migrates the entry when a candidate beats the serving
// mapping by a hysteresis margin — persisting the decision through the
// mapstore manifest so -store-warm restarts re-serve the migrated
// algorithm. Controller-bench mode runs the S-heavy → P-heavy
// phase-shift comparison against each static mapping:
//
//	pmsd -addr :8080 -controller -controller-interval 2s -shadow-sample 0.25
//	pmsd -controller-bench -bench-out BENCH_pr9.json
//
// Forensics (internal/flightrec): an always-on flight recorder keeps
// bounded rings of per-request events, periodic metric frames and
// controller decisions, an SLO watchdog evaluates rolling windows
// (p99 latency, error rate, per-tenant rejection share, migration
// churn, and the must-be-zero theorem-bound rule), and on breach the
// rings freeze into a checksummed PMSINC1 incident snapshot bundling a
// replayable PMSTRC1 request window. GET /debug/snapshot serves a
// manual snapshot; pmsdoctor analyzes and replays incident files.
// Logs are structured (log/slog); -log-format picks text or json.
// Forensics-bench mode prices the recorder on the serving hot path by
// running the mixed workload with the recorder off and fully on:
//
//	pmsd -addr :8080 -flightrec-dir /var/lib/pmsd/incidents -slo-error-rate 5 -slo-p99 50ms
//	pmsd -forensics-bench -requests 12000 -clients 32 -dist zipf -bench-out BENCH_pr10.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"net/http"

	"repro/internal/client"
	"repro/internal/faultinject"
	"repro/internal/flightrec"
	"repro/internal/mapstore"
	"repro/internal/replay"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "worker pool size (0 = auto: 4 serving, 2 in loadgen)")
	maxInflight := flag.Int("max-inflight", 256, "admitted-request limit before 429s")
	flush := flag.Duration("flush", 500*time.Microsecond, "coalescing flush window (0 disables batching)")
	maxBatch := flag.Int("max-batch", 64, "max coalesced batch size (1 disables batching)")
	cacheMB := flag.Int64("cache-mb", 256, "mapping registry byte budget, in MiB")
	workerDelay := flag.Duration("worker-delay", 0, "injected per-task latency (load/backpressure testing only)")
	traceSample := flag.Float64("trace-sample", 1, "request-trace sampling rate in [0,1] (0 disables tracing)")
	traceSlowest := flag.Int("trace-slowest", 32, "slowest-trace buffer size for /debug/requests")

	loadgen := flag.Bool("loadgen", false, "run the load generator instead of serving")
	accessTime := flag.Duration("access-time", time.Millisecond,
		"loadgen: modeled service time of one parallel memory access (what batching amortizes)")
	clients := flag.Int("clients", 32, "loadgen: concurrent clients")
	requests := flag.Int("requests", 20000, "loadgen: total request budget")
	dist := flag.String("dist", "uniform", "loadgen: key distribution: uniform|zipf|sequential")
	seed := flag.Int64("seed", 1, "loadgen: workload seed")
	levels := flag.Int("levels", 20, "loadgen: tree levels of the queried mapping")
	mExp := flag.Int("m", 4, "loadgen: canonical COLOR exponent (modules = 2^m - 1)")
	benchOut := flag.String("bench-out", "", "loadgen/chaos-bench: write the JSON comparison snapshot to this file")

	controller := flag.Bool("controller", false, "enable the adaptive mapping controller (classify live template mix, shadow-score candidates, migrate registry entries)")
	controllerInterval := flag.Duration("controller-interval", 2*time.Second, "controller: policy tick interval")
	shadowSample := flag.Float64("shadow-sample", 0.25, "controller: fraction of template traffic sampled for shadow scoring (0 disables sampling)")
	controllerBench := flag.Bool("controller-bench", false, "run the S-heavy → P-heavy phase-shift comparison: adaptive controller vs each static mapping")

	storeDir := flag.String("store-dir", "", "disk-tier store directory (empty disables the tier)")
	storeBudget := flag.Int64("store-budget", 1024, "disk-tier byte budget, in MiB")
	storeTTL := flag.Duration("store-ttl", 0, "disk-tier entry TTL (0 keeps entries until the budget evicts them)")
	storeWarm := flag.Int("store-warm", 64, "warm-start: pre-admit up to this many of the store's hottest specs")
	storeBench := flag.Bool("store-bench", false, "price the disk tier (cold materialize vs warm disk acquire, Zipf tier hit ratio)")

	traceBench := flag.Bool("trace-bench", false, "measure request-tracing overhead (off vs 0.01 vs full sampling)")
	retrievalBench := flag.Bool("retrieval-bench", false, "price the ColorBatch kernels vs the per-node interface path")
	benchNodes := flag.Int("bench-nodes", 2_000_000, "retrieval-bench: node budget per (alg, batch size) case")
	metricsBench := flag.Bool("metrics-bench", false, "measure domain-accounting overhead (off vs on) on the template-cost path")
	disableKernel := flag.Bool("disable-batch-kernel", false, "force the per-node Color interface loop (kernel A/B baseline)")
	noDomainMetrics := flag.Bool("no-domain-metrics", false, "disable the domain-accounting layer (module loads, conflict histograms, bound monitor)")
	chaos := flag.Bool("chaos", false, "serve with fault injection enabled")
	chaosBench := flag.Bool("chaos-bench", false, "benchmark the resilient client against an in-process chaotic server (hedging off vs on)")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos: fault schedule seed (same seed = same schedule)")
	chaosLatency := flag.Float64("chaos-latency", 0.1, "chaos: per-request latency-spike probability")
	chaosLatencyMin := flag.Duration("chaos-latency-min", 10*time.Millisecond, "chaos: min latency spike")
	chaosLatencyMax := flag.Duration("chaos-latency-max", 50*time.Millisecond, "chaos: max latency spike")
	chaosError := flag.Float64("chaos-error", 0, "chaos: per-window 5xx-burst probability")
	chaosRate := flag.Float64("chaos-rate", 0, "chaos: per-window 429-burst probability")
	chaosBurst := flag.Int("chaos-burst", 8, "chaos: burst window length in requests")
	chaosReset := flag.Float64("chaos-reset", 0, "chaos: per-request connection-reset probability")
	chaosDrip := flag.Float64("chaos-drip", 0, "chaos: per-request slow-body-drip probability")
	chaosPartial := flag.Float64("chaos-partial", 0, "chaos: per-request partial-body probability")
	hedgeDelay := flag.Duration("hedge-delay", 5*time.Millisecond, "chaos-bench: hedged-read delay for the hedged run")

	logFormat := flag.String("log-format", "text", "structured log format: text|json")
	noFlightRec := flag.Bool("no-flightrec", false, "disable the always-on flight recorder and SLO watchdog")
	flightDir := flag.String("flightrec-dir", "", "directory for watchdog-triggered incident snapshots (empty: breaches are logged and counted but never written)")
	flightEvents := flag.Int("flightrec-events", 0, "flight-recorder event ring size (0 = default 4096)")
	flightWindow := flag.Int("flightrec-window", 0, "replayable request-window ring size bundled into incidents (0 = default 2048)")
	sloWindow := flag.Duration("slo-window", 0, "SLO: rolling evaluation window (0 = default 10s)")
	sloInterval := flag.Duration("slo-interval", 0, "SLO: watchdog tick cadence (0 = default 1s)")
	sloP99 := flag.Duration("slo-p99", 0, "SLO: p99 total-latency target (0 disables the rule)")
	sloErrorRate := flag.Float64("slo-error-rate", 0, "SLO: max 5xx share of a window, percent (0 disables the rule)")
	sloTenantReject := flag.Float64("slo-tenant-reject", 0, "SLO: max single-tenant 429 share of a window, percent (0 disables the rule)")
	sloMaxMigrations := flag.Int("slo-max-migrations", 0, "SLO: max controller migrations per window (0 disables the rule)")
	sloMinRequests := flag.Int("slo-min-requests", 0, "SLO: min events in a window before rate/percentile rules may breach (0 = default 20)")
	sloSnapshotEvery := flag.Duration("slo-snapshot-every", 0, "SLO: min interval between watchdog incident snapshots (0 = default 30s)")
	forensicsBench := flag.Bool("forensics-bench", false, "price the flight recorder (off vs fully on) on the mixed serving workload")

	recordFile := flag.String("record", "", "serve mode: record mutating requests into this PMSTRC1 trace file on shutdown")
	replayFile := flag.String("replay", "", "replay a PMSTRC1 trace against a fresh deterministic in-process server, print the digest, exit")
	replayBench := flag.Bool("replay-bench", false, "record a Zipf multi-tenant mixed workload, replay it twice, verify determinism")
	tenants := flag.Int("tenants", 8, "loadgen/replay-bench: tenant population for Zipf-skewed X-Tenant traffic (0 disables)")
	tenantMaxInflight := flag.Int("tenant-max-inflight", 0, "per-tenant admitted-request cap (0 = the global limit, i.e. fairness off)")
	maxTenants := flag.Int("max-tenants", 64, "bounded per-tenant accounting table size (overflow lands in the 'other' bucket)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fail("-log-format must be text or json, got %q", *logFormat)
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)
	fatal := func(err error) {
		logger.Error(err.Error())
		os.Exit(1)
	}
	if *workers < 0 {
		fail("-workers must be non-negative, got %d", *workers)
	}
	if *maxInflight < 1 {
		fail("-max-inflight must be at least 1, got %d", *maxInflight)
	}
	if *maxBatch < 1 {
		fail("-max-batch must be at least 1, got %d", *maxBatch)
	}
	if *cacheMB < 1 {
		fail("-cache-mb must be at least 1, got %d", *cacheMB)
	}
	if *flush < 0 || *workerDelay < 0 {
		fail("-flush and -worker-delay must be non-negative")
	}
	if *storeBudget < 1 {
		fail("-store-budget must be at least 1 MiB, got %d", *storeBudget)
	}
	if *storeTTL < 0 {
		fail("-store-ttl must be non-negative")
	}
	if *storeWarm < 0 {
		fail("-store-warm must be non-negative, got %d", *storeWarm)
	}
	if *traceSample < 0 || *traceSample > 1 {
		fail("-trace-sample must be a probability in [0,1], got %g", *traceSample)
	}
	if *traceSlowest < 1 {
		fail("-trace-slowest must be at least 1, got %d", *traceSlowest)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"-chaos-latency", *chaosLatency}, {"-chaos-error", *chaosError},
		{"-chaos-rate", *chaosRate}, {"-chaos-reset", *chaosReset},
		{"-chaos-drip", *chaosDrip}, {"-chaos-partial", *chaosPartial},
	} {
		if p.v < 0 || p.v > 1 {
			fail("%s must be a probability in [0,1], got %g", p.name, p.v)
		}
	}
	if *chaosBurst < 1 {
		fail("-chaos-burst must be at least 1, got %d", *chaosBurst)
	}
	chaosCfg := faultinject.Config{
		Seed:          *chaosSeed,
		LatencyProb:   *chaosLatency,
		LatencyMin:    *chaosLatencyMin,
		LatencyMax:    *chaosLatencyMax,
		ErrorProb:     *chaosError,
		RateLimitProb: *chaosRate,
		BurstLen:      *chaosBurst,
		ResetProb:     *chaosReset,
		DripProb:      *chaosDrip,
		PartialProb:   *chaosPartial,
	}

	cfg := server.Config{
		Addr:             *addr,
		Workers:          *workers,
		MaxInflight:      *maxInflight,
		FlushWindow:      *flush,
		MaxBatch:         *maxBatch,
		CacheBudgetBytes: *cacheMB << 20,
		WorkerDelay:      *workerDelay,
		TraceSampleRate:  *traceSample,
		TraceSlowest:     *traceSlowest,

		TenantMaxInflight: *tenantMaxInflight,
		MaxTenants:        *maxTenants,

		DisableDomainMetrics: *noDomainMetrics,
		DisableBatchKernel:   *disableKernel,

		Controller:         *controller,
		ControllerInterval: *controllerInterval,
		ShadowSampleRate:   *shadowSample,

		DisableFlightRec: *noFlightRec,
		FlightRecDir:     *flightDir,
		FlightRecEvents:  *flightEvents,
		FlightRecWindow:  *flightWindow,
		SLO: flightrec.SLOConfig{
			Window:               *sloWindow,
			Interval:             *sloInterval,
			MinRequests:          *sloMinRequests,
			P99TargetUS:          sloP99.Microseconds(),
			ErrorRatePct:         *sloErrorRate,
			TenantRejectSharePct: *sloTenantReject,
			MaxMigrations:        *sloMaxMigrations,
			SnapshotMinInterval:  *sloSnapshotEvery,
		},
		Logger: logger,
	}
	if *flightEvents < 0 || *flightWindow < 0 {
		fail("-flightrec-events and -flightrec-window must be non-negative")
	}
	if *sloWindow < 0 || *sloInterval < 0 || *sloP99 < 0 || *sloSnapshotEvery < 0 {
		fail("-slo-window, -slo-interval, -slo-p99 and -slo-snapshot-every must be non-negative")
	}
	if *sloErrorRate < 0 || *sloErrorRate > 100 || *sloTenantReject < 0 || *sloTenantReject > 100 {
		fail("-slo-error-rate and -slo-tenant-reject are percentages in [0,100]")
	}
	if *sloMaxMigrations < 0 || *sloMinRequests < 0 {
		fail("-slo-max-migrations and -slo-min-requests must be non-negative")
	}
	if *controllerInterval <= 0 {
		fail("-controller-interval must be positive, got %v", *controllerInterval)
	}
	if *shadowSample < 0 || *shadowSample > 1 {
		fail("-shadow-sample must be a probability in [0,1], got %g", *shadowSample)
	}
	if *shadowSample == 0 {
		cfg.ShadowSampleRate = -1 // Config treats 0 as "default"; negative disables
	}
	if *controller && *noDomainMetrics {
		fail("-controller needs the domain accounting layer; drop -no-domain-metrics")
	}
	if *flush == 0 {
		cfg.FlushWindow = -1 // Config treats 0 as "default"; negative disables
	}
	if *traceSample == 0 {
		cfg.TraceSampleRate = -1 // same idiom: 0 means "default" to Config
	}

	if *tenants < 0 {
		fail("-tenants must be non-negative, got %d", *tenants)
	}
	if *tenantMaxInflight < 0 {
		fail("-tenant-max-inflight must be non-negative, got %d", *tenantMaxInflight)
	}
	if *maxTenants < 1 {
		fail("-max-tenants must be at least 1, got %d", *maxTenants)
	}

	if *replayFile != "" {
		tr0 := time.Now()
		res, checks, violations, err := server.ReplayFile(cfg, *replayFile)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("replayed %d requests in %.3fs\n", res.Requests, time.Since(tr0).Seconds())
		for status, n := range res.StatusCounts {
			fmt.Printf("  status %d: %d\n", status, n)
		}
		fmt.Printf("digest: %s\n", res.Digest)
		fmt.Printf("bound checks %d, violations %d\n", checks, violations)
		if violations != 0 {
			os.Exit(1)
		}
		return
	}

	if *replayBench {
		res, err := server.RunReplayBench(server.ReplayBenchConfig{
			Load: server.LoadGenConfig{
				Mapping:  server.MappingSpec{Alg: "color", Levels: *levels, M: *mExp},
				Clients:  *clients,
				Requests: *requests,
				Seed:     *seed,
				Tenants:  *tenants,
				Server:   cfg,
			},
			TracePath: *recordFile,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d requests (%d dropped, %d bytes on the wire, %d tenants, live %.0f req/s)\n",
			res.Recorded, res.Dropped, res.TraceBytes, res.Tenants, res.RecordRPS)
		fmt.Printf("replayed %d requests twice: deterministic=%v (%.0f req/s)\n",
			res.ReplayRequests, res.Deterministic, res.ReplayRPS)
		fmt.Printf("digest: %s\n", res.Digest)
		fmt.Printf("bound checks %d, violations %d\n", res.BoundChecks, res.BoundViolations)
		if *benchOut != "" {
			data, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("snapshot written to %s\n", *benchOut)
		}
		return
	}

	if *chaosBench {
		cb := client.ChaosBenchConfig{
			Mapping:    server.MappingSpec{Alg: "color", Levels: *levels, M: *mExp},
			Clients:    *clients,
			Requests:   *requests,
			Seed:       *seed,
			Chaos:      chaosCfg,
			HedgeDelay: *hedgeDelay,
			Client: client.Config{
				MaxAttempts: 8,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  100 * time.Millisecond,
				Breaker:     client.BreakerConfig{FailureThreshold: -1},
			},
			Server: cfg,
		}
		switch *dist {
		case "uniform":
			cb.Dist = workload.Uniform
		case "zipf":
			cb.Dist = workload.Zipf
		case "sequential":
			cb.Dist = workload.Sequential
		default:
			fail("unknown distribution %q", *dist)
		}
		cmp, err := client.RunChaosBenchComparison(cb)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("unhedged: p50 %.0fus p95 %.0fus p99 %.0fus (%d ok, %d errors, %d retries)\n",
			cmp.Unhedged.P50us, cmp.Unhedged.P95us, cmp.Unhedged.P99us,
			cmp.Unhedged.Calls, cmp.Unhedged.Errors, cmp.Unhedged.Retries)
		fmt.Printf("hedged:   p50 %.0fus p95 %.0fus p99 %.0fus (%d ok, %d errors, %d retries, %d hedges, %d wins)\n",
			cmp.Hedged.P50us, cmp.Hedged.P95us, cmp.Hedged.P99us,
			cmp.Hedged.Calls, cmp.Hedged.Errors, cmp.Hedged.Retries,
			cmp.Hedged.Hedges, cmp.Hedged.HedgeWins)
		fmt.Printf("hedged p99 speedup: %.2fx (chaos seed %d)\n", cmp.P99Speedup, cmp.ChaosSeed)
		if *benchOut != "" {
			data, err := json.MarshalIndent(cmp, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("snapshot written to %s\n", *benchOut)
		}
		return
	}

	if *controllerBench {
		res, err := server.RunControllerBench(server.ControllerBenchConfig{
			Levels:   *levels,
			Requests: *requests,
			Clients:  *clients,
			Seed:     *seed,
			Server:   cfg,
		})
		for _, sc := range []server.ControllerBenchScenario{
			res.Controller, res.StaticLevelcyclic, res.StaticMod,
		} {
			fmt.Printf("%-20s %-24s → %-16s S-phase %6d conflicts (p99 %.0fus), P-phase %6d (p99 %.0fus), total %6d, migrations %d, violations %d\n",
				sc.Mode+":", sc.RequestedKey, sc.EffectiveKey,
				sc.SPhase.Conflicts, sc.SPhase.P99us,
				sc.PPhase.Conflicts, sc.PPhase.P99us,
				sc.TotalConflicts, sc.Migrations, sc.BoundViolations)
		}
		fmt.Printf("controller beats levelcyclic: %v, beats mod: %v (p99 ratio vs best static %.2f)\n",
			res.BeatsLevelcyclic, res.BeatsMod, res.P99RatioVsBestStatic)
		if *benchOut != "" {
			data, merr := json.MarshalIndent(res, "", "  ")
			if merr != nil {
				fatal(merr)
			}
			if werr := os.WriteFile(*benchOut, append(data, '\n'), 0o644); werr != nil {
				fatal(werr)
			}
			fmt.Printf("snapshot written to %s\n", *benchOut)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	if *storeBench {
		rep, err := server.RunStoreBench(server.StoreBenchConfig{
			Dir:    *storeDir,
			Levels: *levels,
			Seed:   *seed,
		})
		if err != nil {
			fatal(err)
		}
		for _, cw := range rep.ColdWarm {
			fmt.Printf("%-32s cold %8.2fms, warm %8.3fms, speedup %6.1fx (%d bytes on disk)\n",
				cw.Key, float64(cw.ColdNS)/1e6, float64(cw.WarmNS)/1e6, cw.Speedup, cw.EntryBytes)
		}
		fmt.Printf("zipf mix: %d acquires over %d specs — %d memory hits, %d disk hits, %d materializations (tier hit ratio %.3f)\n",
			rep.Mix.Requests, rep.Mix.Specs, rep.Mix.MemoryHits, rep.Mix.DiskHits,
			rep.Mix.Materializes, rep.Mix.TierHitRatio)
		if *benchOut != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("snapshot written to %s\n", *benchOut)
		}
		return
	}

	if *retrievalBench {
		if *benchNodes < 1 {
			fail("-bench-nodes must be at least 1, got %d", *benchNodes)
		}
		rep, err := server.RunRetrievalBench(server.RetrievalBenchConfig{
			Levels:       *levels,
			NodesPerCase: *benchNodes,
			Seed:         *seed,
		})
		if err != nil {
			fatal(err)
		}
		for _, k := range rep.Kernels {
			fmt.Printf("%-32s batch %-5d kernel %6.2f ns/node, per-node %6.2f ns/node, speedup %5.2fx\n",
				k.Mapping, k.BatchSize, k.KernelNSPerNode, k.PerNodeNSPerNode, k.Speedup)
		}
		for _, s := range rep.Serving {
			fmt.Printf("serving %-24s batch %d: kernel %.0f nodes/s (compute %.0f ns/batch), per-node %.0f nodes/s (compute %.0f ns/batch), compute speedup %.2fx\n",
				s.Mapping.Key(), s.BatchSize,
				s.Kernel.NodesPerSec, s.Kernel.BatchComputeMeanNS,
				s.PerNode.NodesPerSec, s.PerNode.BatchComputeMeanNS, s.ComputeSpeedup)
		}
		if *benchOut != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("snapshot written to %s\n", *benchOut)
		}
		return
	}

	if *loadgen || *traceBench || *metricsBench || *forensicsBench {
		var distribution workload.Distribution
		switch *dist {
		case "uniform":
			distribution = workload.Uniform
		case "zipf":
			distribution = workload.Zipf
		case "sequential":
			distribution = workload.Sequential
		default:
			fail("unknown distribution %q", *dist)
		}
		if *clients < 1 || *requests < 1 {
			fail("-clients and -requests must be at least 1")
		}
		if *accessTime < 0 {
			fail("-access-time must be non-negative")
		}
		// Each worker-pool task is one parallel memory operation; its
		// service time is what coalescing amortizes across a batch,
		// mirroring the paper's cycle model where a parallel access costs
		// max-module-load cycles however many nodes it touches. The
		// metrics bench skips the modeled delay: a millisecond of
		// injected service time would drown the few atomic adds being
		// priced. The forensics bench keeps it, like the trace bench:
		// the recorder's price is quoted against the serving path as
		// modeled, not against a zero-latency memory.
		if cfg.WorkerDelay == 0 && !*metricsBench {
			cfg.WorkerDelay = *accessTime
		}
		if cfg.Workers == 0 {
			cfg.Workers = 2 // scarce memory ports by default, so capacity binds
			if *metricsBench || *forensicsBench {
				cfg.Workers = 4
			}
		}
		lg := server.LoadGenConfig{
			Mapping:  server.MappingSpec{Alg: "color", Levels: *levels, M: *mExp},
			Clients:  *clients,
			Requests: *requests,
			Dist:     distribution,
			Seed:     *seed,
			Server:   cfg,
		}

		if *forensicsBench {
			cmp, err := server.RunForensicsOverheadComparison(lg)
			if err != nil {
				fatal(err)
			}
			for _, r := range []server.LoadGenResult{cmp.Off, cmp.On} {
				fmt.Printf("%-12s p50 %.0fus p95 %.0fus p99 %.0fus (%.0f req/s, %d ok)\n",
					r.Mode+":", r.P50us, r.P95us, r.P99us, r.ReqPerSec, r.Requests)
			}
			fmt.Printf("p50 overhead with flight recorder: %+.2f%%\n", cmp.OnP50OverheadPct)
			fmt.Printf("events %d (evicted %d), window recorded %d, breaches %d, bound violations %d\n",
				cmp.Events, cmp.EventsEvicted, cmp.WindowRecorded, cmp.Breaches, cmp.BoundViolations)
			if *benchOut != "" {
				data, err := json.MarshalIndent(cmp, "", "  ")
				if err != nil {
					fatal(err)
				}
				if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("snapshot written to %s\n", *benchOut)
			}
			return
		}

		if *metricsBench {
			cmp, err := server.RunMetricsOverheadComparison(lg)
			if err != nil {
				fatal(err)
			}
			for _, r := range []server.LoadGenResult{cmp.Off, cmp.On} {
				fmt.Printf("%-12s p50 %.0fus p95 %.0fus p99 %.0fus (%.0f req/s, %d ok)\n",
					r.Mode+":", r.P50us, r.P95us, r.P99us, r.ReqPerSec, r.Requests)
			}
			fmt.Printf("p50 overhead with accounting: %+.2f%%\n", cmp.OnP50OverheadPct)
			fmt.Printf("bound checks %d, violations %d, load ratio %.3f, accesses %d\n",
				cmp.BoundChecks, cmp.BoundViolations, cmp.LoadRatio, cmp.AccessesTotal)
			if *benchOut != "" {
				data, err := json.MarshalIndent(cmp, "", "  ")
				if err != nil {
					fatal(err)
				}
				if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("snapshot written to %s\n", *benchOut)
			}
			return
		}

		if *traceBench {
			cmp, err := server.RunTraceOverheadComparison(lg)
			if err != nil {
				fatal(err)
			}
			for _, r := range []server.LoadGenResult{cmp.Off, cmp.Sampled, cmp.Full} {
				fmt.Printf("%-18s p50 %.0fus p95 %.0fus p99 %.0fus (%.0f req/s, %d ok)\n",
					r.Mode+":", r.P50us, r.P95us, r.P99us, r.ReqPerSec, r.Requests)
			}
			fmt.Printf("p50 overhead: %+.2f%% sampled@0.01, %+.2f%% full sampling\n",
				cmp.SampledP50OverheadPct, cmp.FullP50OverheadPct)
			if *benchOut != "" {
				data, err := json.MarshalIndent(cmp, "", "  ")
				if err != nil {
					fatal(err)
				}
				if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
					fatal(err)
				}
				fmt.Printf("snapshot written to %s\n", *benchOut)
			}
			return
		}

		cmp, err := server.RunLoadGenComparison(lg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("batched: %.0f req/s (%d ok, %d rejected, mean batch %.2f, %d coalesced)\n",
			cmp.Batched.ReqPerSec, cmp.Batched.Requests, cmp.Batched.Rejected,
			cmp.Batched.MeanBatchSize, cmp.Batched.CoalescedJobs)
		fmt.Printf("batch1:  %.0f req/s (%d ok, %d rejected)\n",
			cmp.Batch1.ReqPerSec, cmp.Batch1.Requests, cmp.Batch1.Rejected)
		fmt.Printf("speedup: %.2fx\n", cmp.Speedup)
		if *benchOut != "" {
			data, err := json.MarshalIndent(cmp, "", "  ")
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("snapshot written to %s\n", *benchOut)
		}
		return
	}

	if *chaos {
		inj := faultinject.New(chaosCfg)
		cfg.Middleware = inj.Middleware
		// Stamp the fault schedule into incident snapshots so pmsdoctor
		// -replay can rebuild the exact same chaos during reproduction.
		if ccJSON, err := json.Marshal(chaosCfg); err == nil {
			cfg.FlightRecMeta = map[string]string{server.ChaosConfigMetaKey: string(ccJSON)}
		}
		logger.Info("pmsd CHAOS MODE: "+inj.String(), "seed", *chaosSeed)
	}
	var rec *replay.Recorder
	if *recordFile != "" {
		rec = replay.NewRecorder(replay.RecorderConfig{Seed: *seed})
		// The recorder wraps outermost so the trace captures every offered
		// request — including ones chaos or admission later refuses.
		inner := cfg.Middleware
		cfg.Middleware = func(next http.Handler) http.Handler {
			if inner != nil {
				next = inner(next)
			}
			return rec.Middleware(next)
		}
		logger.Info("pmsd recording mutating requests to "+*recordFile, "file", *recordFile)
	}
	if *storeDir != "" {
		st, err := mapstore.Open(mapstore.Options{
			Dir:         *storeDir,
			BudgetBytes: *storeBudget << 20,
			TTL:         *storeTTL,
		})
		if err != nil {
			fatal(fmt.Errorf("store: %w", err))
		}
		cfg.Store = st
		logger.Info("pmsd store at "+*storeDir, "dir", *storeDir, "budget_mib", *storeBudget)
	}
	srv := server.New(cfg)
	if cfg.Store != nil && *storeWarm > 0 {
		if admitted := srv.WarmStart(*storeWarm); admitted > 0 {
			logger.Info(fmt.Sprintf("pmsd warm start: %d mappings pre-admitted from the store", admitted), "admitted", admitted)
		}
	}
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	// The message keeps the "pmsd listening on ADDR" shape the smoke
	// scripts grep; the structured attrs carry the same facts for json.
	logger.Info(fmt.Sprintf("pmsd listening on %s (%s)", srv.Addr(), cfg),
		"addr", srv.Addr(), "workers", cfg.Workers, "max_inflight", cfg.MaxInflight,
		"flightrec", !cfg.DisableFlightRec, "flightrec_dir", cfg.FlightRecDir)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("pmsd draining")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fatal(fmt.Errorf("shutdown: %w", err))
	}
	if rec != nil {
		stats := rec.Stats()
		trace := rec.Close()
		if err := trace.Save(*recordFile); err != nil {
			fatal(fmt.Errorf("saving trace: %w", err))
		}
		logger.Info("pmsd trace saved to "+*recordFile, "recorded", stats.Recorded, "dropped", stats.Dropped)
	}
	logger.Info("pmsd stopped")
}
