// Command pmsdoctor is the offline analyzer for pmsd incident
// snapshots (PMSINC1 files written by the SLO watchdog, or fetched
// live from GET /debug/snapshot). It decodes an incident's frozen
// rings — per-request events, metric frames, controller decisions,
// slowest traces and the replayable PMSTRC1 request window — and
// prints the correlated report: breach timeline, top (tenant, spec,
// endpoint) triples by conflict and latency attribution, stage
// histogram movement between the baseline and freeze frames, and the
// controller decision audit.
//
//	pmsdoctor /var/lib/pmsd/incidents/incident-0000000123456789.pmsinc
//	pmsdoctor -dir /var/lib/pmsd/incidents            # every incident, oldest first
//	pmsdoctor -once -dir /var/lib/pmsd/incidents      # newest incident only
//
// With -replay, pmsdoctor re-drives the incident's bundled request
// window against two fresh in-process deterministic servers — with the
// incident's recorded chaos schedule rebuilt, when pmsd ran under
// -chaos — and reports whether the incident reproduces: both replays
// digest-identical, and every count-based rule that fired originally
// fires again over the replayed events. A non-reproducing incident
// exits nonzero:
//
//	pmsdoctor -replay -once -dir /var/lib/pmsd/incidents
//
// -json emits the report (and the replay verdict) as JSON instead of
// the text document.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/flightrec"
	"repro/internal/server"
)

func main() {
	dir := flag.String("dir", "", "incident directory to scan for *.pmsinc files")
	once := flag.Bool("once", false, "with -dir: analyze only the newest incident")
	doReplay := flag.Bool("replay", false, "re-drive each incident's bundled trace and verify it reproduces (exit 1 when it does not)")
	asJSON := flag.Bool("json", false, "emit reports (and replay verdicts) as JSON")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "pmsdoctor: "+format+"\n", args...)
		os.Exit(2)
	}
	paths := flag.Args()
	if *dir != "" {
		found, err := filepath.Glob(filepath.Join(*dir, "*.pmsinc"))
		if err != nil {
			fail("scanning %s: %v", *dir, err)
		}
		// Incident names embed the creation timestamp zero-padded, so the
		// lexical order is the chronological one.
		sort.Strings(found)
		if *once && len(found) > 0 {
			found = found[len(found)-1:]
		}
		paths = append(paths, found...)
	}
	if len(paths) == 0 {
		fail("no incident files (pass paths or -dir DIR; with -once the newest is picked)")
	}

	exit := 0
	for _, path := range paths {
		inc, err := flightrec.ReadIncident(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmsdoctor: %s: %v\n", path, err)
			exit = 1
			continue
		}
		rep := flightrec.Analyze(inc)
		if *asJSON {
			out := struct {
				Path   string                       `json:"path"`
				Report *flightrec.Report            `json:"report"`
				Replay *server.IncidentReplayResult `json:"replay,omitempty"`
			}{Path: path, Report: rep}
			if *doReplay {
				verdict, err := server.ReplayIncident(server.Config{}, inc)
				if err != nil {
					fmt.Fprintf(os.Stderr, "pmsdoctor: %s: replay: %v\n", path, err)
					exit = 1
				} else {
					out.Replay = &verdict
					if !verdict.Reproduced {
						exit = 1
					}
				}
			}
			data, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				fail("encoding report: %v", err)
			}
			fmt.Printf("%s\n", data)
			continue
		}
		fmt.Printf("== %s\n", path)
		fmt.Print(rep.Render())
		if *doReplay {
			verdict, err := server.ReplayIncident(server.Config{}, inc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pmsdoctor: %s: replay: %v\n", path, err)
				exit = 1
				continue
			}
			fmt.Printf("replay: %d records -> %d requests, deterministic=%v\n",
				verdict.Records, verdict.Requests, verdict.Deterministic)
			fmt.Printf("  digest      %s\n", verdict.Digest)
			fmt.Printf("  digest(2nd) %s\n", verdict.DigestRerun)
			fmt.Printf("  chaos applied: %v\n", verdict.ChaosApplied)
			fmt.Printf("  original rules %v, replay rules %v\n", verdict.OriginalRules, verdict.ReplayRules)
			fmt.Printf("  bound checks %d, violations %d\n", verdict.BoundChecks, verdict.BoundViolations)
			fmt.Printf("  reproduced: %v\n", verdict.Reproduced)
			if !verdict.Reproduced {
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
