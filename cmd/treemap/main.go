// Command treemap answers node-to-module queries for any of the mapping
// algorithms, and can dump whole levels — a small interactive window into
// the colorings.
//
// Usage:
//
//	treemap -alg color -levels 12 -m 3 -node 5,3      # color of v(5,3)
//	treemap -alg labeltree -levels 12 -modules 31 -level 4   # dump level 4
//	treemap -alg mod -levels 10 -modules 7 -node 0,0
//
// Algorithms: color (canonical COLOR, module count 2^m-1 from -m),
// labeltree (-modules), mod (-modules), random (-modules -seed).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/viz"
)

func main() {
	alg := flag.String("alg", "color", "mapping algorithm: color|labeltree|mod|random")
	levels := flag.Int("levels", 12, "tree levels (height)")
	mExp := flag.Int("m", 3, "canonical COLOR exponent: M = 2^m - 1")
	modules := flag.Int("modules", 7, "module count for labeltree/mod/random")
	seed := flag.Int64("seed", 1, "seed for the random mapping")
	nodeSpec := flag.String("node", "", "node to query as index,level")
	level := flag.Int("level", -1, "dump all colors of one level")
	saveTo := flag.String("save", "", "write the materialized mapping to this file")
	draw := flag.Bool("draw", false, "draw the top levels of the coloring as ASCII art")
	histogram := flag.Bool("histogram", false, "print the per-module load histogram")
	loadFrom := flag.String("load", "", "load a previously saved mapping instead of building one")
	flag.Parse()

	if err := validateFlags(*alg, *levels, *mExp, *modules, *loadFrom); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	var mapping core.Mapping
	var err error
	if *loadFrom != "" {
		f, ferr := os.Open(*loadFrom)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		mapping, err = core.LoadMap(f)
		f.Close()
	} else {
		mapping, err = build(*alg, *levels, *mExp, *modules, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(core.Describe(mapping))

	if *saveTo != "" {
		f, ferr := os.Create(*saveTo)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		if err := core.Save(f, mapping); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved to %s\n", *saveTo)
	}

	if *nodeSpec != "" {
		n, err := parseNode(*nodeSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if !mapping.Tree().Contains(n) {
			fmt.Fprintf(os.Stderr, "node %v outside the tree\n", n)
			os.Exit(1)
		}
		fmt.Printf("%v -> module %d\n", n, mapping.Color(n))
	}

	if *draw {
		fmt.Print(viz.Render(mapping, viz.MaxLevels))
	}
	if *histogram {
		fmt.Print(viz.LevelHistogram(mapping, 50))
	}

	if *level >= 0 {
		if *level >= mapping.Tree().Levels() {
			fmt.Fprintf(os.Stderr, "level %d outside the tree\n", *level)
			os.Exit(1)
		}
		width := mapping.Tree().LevelWidth(*level)
		const cap = 64
		for i := int64(0); i < width && i < cap; i++ {
			fmt.Printf("%d ", mapping.Color(core.V(i, *level)))
		}
		if width > cap {
			fmt.Printf("... (%d more)", width-cap)
		}
		fmt.Println()
	}
}

// validateFlags rejects nonsensical parameter combinations up front with
// a usage message, instead of panicking or misbehaving deeper in the
// mapping constructors. When loading a saved mapping the build parameters
// are ignored, so only the algorithm-independent checks apply.
func validateFlags(alg string, levels, mExp, modules int, loadFrom string) error {
	if loadFrom != "" {
		return nil
	}
	switch alg {
	case "color", "labeltree", "mod", "random":
	default:
		return fmt.Errorf("unknown algorithm %q (want color, labeltree, mod or random)", alg)
	}
	if levels < 1 || levels > 62 {
		return fmt.Errorf("-levels %d out of range [1,62]", levels)
	}
	if alg == "color" && mExp < 2 {
		return fmt.Errorf("-m %d must be at least 2 for the canonical COLOR parameters", mExp)
	}
	if alg != "color" {
		min := 1
		if alg == "labeltree" {
			min = 3
		}
		if modules < min {
			return fmt.Errorf("-modules %d must be at least %d for %s", modules, min, alg)
		}
	}
	return nil
}

func build(alg string, levels, mExp, modules int, seed int64) (core.Mapping, error) {
	switch alg {
	case "color":
		return core.NewColor(levels, mExp)
	case "labeltree":
		return core.NewLabelTree(levels, modules)
	case "mod":
		return core.NewModulo(levels, modules), nil
	case "random":
		return core.NewRandom(levels, modules, seed), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}

func parseNode(spec string) (core.Node, error) {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return core.Node{}, fmt.Errorf("node spec %q: want index,level", spec)
	}
	idx, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return core.Node{}, fmt.Errorf("node spec %q: %v", spec, err)
	}
	lvl, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return core.Node{}, fmt.Errorf("node spec %q: %v", spec, err)
	}
	return core.V(idx, lvl), nil
}
