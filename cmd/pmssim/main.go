// Command pmssim replays application workloads (binary-heap operations or
// BST range queries) on the parallel memory system simulator under a
// chosen mapping and reports the memory cost.
//
// Usage:
//
//	pmssim -workload heap -ops 10000 -alg color -levels 14 -m 3
//	pmssim -workload range -queries 500 -span 64 -alg mod -modules 7
//	pmssim -workload dict -queries 200 -batch 64 -alg labeltree -levels 14 -modules 31
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/dictionary"
	"repro/internal/heapsim"
	"repro/internal/pms"
	"repro/internal/rangequery"
	"repro/internal/trace"
	wl "repro/internal/workload"
)

func main() {
	workload := flag.String("workload", "heap", "workload: heap|range")
	alg := flag.String("alg", "color", "mapping: color|labeltree|mod|random")
	levels := flag.Int("levels", 14, "tree levels")
	mExp := flag.Int("m", 3, "canonical COLOR exponent (M = 2^m - 1)")
	modules := flag.Int("modules", 7, "modules for labeltree/mod/random")
	seed := flag.Int64("seed", 1, "workload seed")
	ops := flag.Int("ops", 10000, "heap operations")
	queries := flag.Int("queries", 200, "range queries / dictionary batches")
	dist := flag.String("dist", "uniform", "key distribution: uniform|zipf|sequential")
	span := flag.Int64("span", 64, "range query span (keys)")
	batch := flag.Int("batch", 64, "dictionary lookups per batch")
	traceOut := flag.String("trace-out", "", "record the memory trace to this file")
	traceIn := flag.String("trace-in", "", "replay a recorded trace instead of generating a workload")
	workers := flag.Int("workers", 1, "replay workers for -trace-in (0 = GOMAXPROCS); results are identical at any count")
	flag.Parse()

	if err := validateFlags(*alg, *levels, *mExp, *modules, *ops, *queries, *span, *batch, *workers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	mapping, err := build(*alg, *levels, *mExp, *modules, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(core.Describe(mapping))
	rng := rand.New(rand.NewSource(*seed))

	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err := trace.Load(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := trace.ReplayParallel(mapping, tr, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d batches, %d items, %d cycles (%.3f cycles/batch), conflicts %d, max queue %d\n",
			res.Batches, res.Items, res.Cycles, float64(res.Cycles)/float64(res.Batches),
			res.Stats.Conflicts, res.Stats.MaxQueue)
		return
	}

	var recorder *trace.Recorder
	if *traceOut != "" {
		recorder = trace.NewRecorder(mapping.Tree().Levels())
	}
	attach := func(sys *pms.System) *pms.System {
		if recorder != nil {
			sys.SetObserver(recorder.Record)
		}
		return sys
	}

	var distribution wl.Distribution
	switch *dist {
	case "uniform":
		distribution = wl.Uniform
	case "zipf":
		distribution = wl.Zipf
	case "sequential":
		distribution = wl.Sequential
	default:
		fmt.Fprintf(os.Stderr, "unknown distribution %q\n", *dist)
		os.Exit(1)
	}

	switch *workload {
	case "heap":
		keys, err := wl.NewKeyStream(distribution, 1<<30, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opList, err := wl.HeapOps(wl.DefaultHeapMix(), *ops, keys, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := heapsim.Run(attach(pms.NewSystem(mapping)), opList)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("heap: %d ops, %d cycles, %.3f cycles/op, utilization %.3f\n",
			res.Ops, res.TotalCycles, res.CyclesPerOp(), res.Stats.Utilization(mapping.Modules()))
	case "range":
		var total, max int64
		nodes := mapping.Tree().Nodes()
		if *span >= nodes {
			fmt.Fprintf(os.Stderr, "span %d exceeds key space %d\n", *span, nodes)
			os.Exit(1)
		}
		for q := 0; q < *queries; q++ {
			lo := rng.Int63n(nodes - *span)
			res, err := rangequery.Run(attach(pms.NewSystem(mapping)), lo, lo+*span-1)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			total += res.Cycles
			if res.Cycles > max {
				max = res.Cycles
			}
		}
		fmt.Printf("range: %d queries of span %d, mean %.2f cycles, max %d cycles\n",
			*queries, *span, float64(total)/float64(*queries), max)
	case "dict":
		d := dictionary.New(attach(pms.NewSystem(mapping)))
		stream, err := wl.NewKeyStream(distribution, d.KeySpace(), *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var total int64
		var steps int
		for q := 0; q < *queries; q++ {
			keys := stream.Keys(*batch)
			res, err := d.BatchLookup(keys)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			total += res.Cycles
			steps = res.Steps
		}
		fmt.Printf("dict: %d batches of %d lookups (%d lock-steps each), mean %.2f cycles/batch\n",
			*queries, *batch, steps, float64(total)/float64(*queries))
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
		os.Exit(1)
	}

	if recorder != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := recorder.Trace().Save(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
}

// validateFlags rejects nonsensical parameter combinations with a usage
// message before any mapping construction or workload generation, instead
// of panicking (negative levels/modules) or silently looping forever
// (non-positive counts).
func validateFlags(alg string, levels, mExp, modules, ops, queries int, span int64, batch, workers int) error {
	switch alg {
	case "color", "labeltree", "mod", "random":
	default:
		return fmt.Errorf("unknown algorithm %q (want color, labeltree, mod or random)", alg)
	}
	if levels < 1 || levels > 62 {
		return fmt.Errorf("-levels %d out of range [1,62]", levels)
	}
	if alg == "color" && mExp < 2 {
		return fmt.Errorf("-m %d must be at least 2 for the canonical COLOR parameters", mExp)
	}
	if alg != "color" {
		min := 1
		if alg == "labeltree" {
			min = 3
		}
		if modules < min {
			return fmt.Errorf("-modules %d must be at least %d for %s", modules, min, alg)
		}
	}
	if ops < 0 {
		return fmt.Errorf("-ops %d must be non-negative", ops)
	}
	if queries < 1 {
		return fmt.Errorf("-queries %d must be at least 1", queries)
	}
	if span < 1 {
		return fmt.Errorf("-span %d must be at least 1", span)
	}
	if batch < 1 {
		return fmt.Errorf("-batch %d must be at least 1", batch)
	}
	if workers < 0 {
		return fmt.Errorf("-workers %d must be non-negative (0 = GOMAXPROCS)", workers)
	}
	return nil
}

func build(alg string, levels, mExp, modules int, seed int64) (core.Mapping, error) {
	switch alg {
	case "color":
		return core.NewColor(levels, mExp)
	case "labeltree":
		return core.NewLabelTree(levels, modules)
	case "mod":
		return core.NewModulo(levels, modules), nil
	case "random":
		return core.NewRandom(levels, modules, seed), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", alg)
	}
}
