package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

const expoT0 = `# TYPE pmsd_endpoint_requests_total counter
pmsd_endpoint_requests_total{endpoint="color"} 100
pmsd_endpoint_requests_total{endpoint="template_cost"} 10
pmsd_endpoint_requests_total{endpoint="simulate"} 0
# TYPE pmsd_accesses_total counter
pmsd_accesses_total 1000
# TYPE pmsd_module_accesses_total counter
pmsd_module_accesses_total{module="0"} 600
pmsd_module_accesses_total{module="2"} 400
`

const expoT1 = `# TYPE pmsd_endpoint_requests_total counter
pmsd_endpoint_requests_total{endpoint="color"} 150
pmsd_endpoint_requests_total{endpoint="template_cost"} 10
pmsd_endpoint_requests_total{endpoint="simulate"} 0
# TYPE pmsd_inflight gauge
pmsd_inflight 3
# TYPE pmsd_queue_depth gauge
pmsd_queue_depth 2
# TYPE pmsd_accesses_total counter
pmsd_accesses_total 2000
# TYPE pmsd_module_active gauge
pmsd_module_active 2
# TYPE pmsd_module_hottest gauge
pmsd_module_hottest 0
# TYPE pmsd_module_load_max gauge
pmsd_module_load_max 1200
# TYPE pmsd_module_load_mean gauge
pmsd_module_load_mean 1000
# TYPE pmsd_module_load_ratio gauge
pmsd_module_load_ratio 1.2
# TYPE pmsd_batches_total counter
pmsd_batches_total 50
# TYPE pmsd_conflicts_total counter
pmsd_conflicts_total 25
# TYPE pmsd_bound_checks_total counter
pmsd_bound_checks_total 10
# TYPE pmsd_bound_violations_total counter
pmsd_bound_violations_total 0
# TYPE pmsd_bound_checks_skipped_total counter
pmsd_bound_checks_skipped_total 1
# TYPE pmsd_registry_acquire_hits_total counter
pmsd_registry_acquire_hits_total 70
# TYPE pmsd_registry_acquire_disk_hits_total counter
pmsd_registry_acquire_disk_hits_total 20
# TYPE pmsd_registry_acquire_materializes_total counter
pmsd_registry_acquire_materializes_total 10
# TYPE pmsd_store_entries gauge
pmsd_store_entries 4
# TYPE pmsd_store_bytes gauge
pmsd_store_bytes 3145728
# TYPE pmsd_store_spills_total counter
pmsd_store_spills_total 6
# TYPE pmsd_store_corrupt_total counter
pmsd_store_corrupt_total 0
# TYPE pmsd_controller_decisions_total counter
pmsd_controller_decisions_total 12
# TYPE pmsd_controller_migrations_total counter
pmsd_controller_migrations_total 1
# TYPE pmsd_controller_shadow_evals_total counter
pmsd_controller_shadow_evals_total 36
# TYPE pmsd_controller_dwell_seconds gauge
pmsd_controller_dwell_seconds{spec="levelcyclic/H=12/M=15"} 42
# TYPE pmsd_controller_migrations gauge
pmsd_controller_migrations{spec="levelcyclic/H=12/M=15"} 1
# TYPE pmsd_flightrec_events_total counter
pmsd_flightrec_events_total 140
# TYPE pmsd_flightrec_snapshots_total counter
pmsd_flightrec_snapshots_total 1
# TYPE pmsd_flightrec_snapshots_rate_limited_total counter
pmsd_flightrec_snapshots_rate_limited_total 2
# TYPE pmsd_slo_breaches_total counter
pmsd_slo_breaches_total 3
# TYPE pmsd_slo_recoveries_total counter
pmsd_slo_recoveries_total 3
# TYPE pmsd_slo_rule_breaches_total counter
pmsd_slo_rule_breaches_total{rule="error_rate"} 3
# TYPE pmsd_template_conflicts histogram
pmsd_template_conflicts_bucket{family="S",le="0"} 4
pmsd_template_conflicts_bucket{family="S",le="1"} 8
pmsd_template_conflicts_bucket{family="S",le="+Inf"} 8
pmsd_template_conflicts_sum{family="S"} 4
pmsd_template_conflicts_count{family="S"} 8
# TYPE pmsd_module_accesses_total counter
pmsd_module_accesses_total{module="0"} 1200
pmsd_module_accesses_total{module="2"} 800
`

func parse(t *testing.T, expo string) *metrics.Scrape {
	t.Helper()
	sc, err := metrics.ParseExposition(expo)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRenderFirstFrame checks the no-previous-scrape frame: cumulative
// values shown, every rate a dash.
func TestRenderFirstFrame(t *testing.T) {
	out := render(nil, parse(t, expoT0), 0, 20)
	for _, want := range []string{
		"color 100 (-)",
		"accesses      1000 (-)",
		"m0          600 (-)",
		"m2          400 (-)",
		"module heatmap (2 modules)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("first frame missing %q:\n%s", want, out)
		}
	}
}

// TestRenderRatesAndGauges checks the second frame: counter deltas turn
// into per-second rates, gauges and the bound monitor render, and the
// heatmap scales bars to the hottest module.
func TestRenderRatesAndGauges(t *testing.T) {
	prev, cur := parse(t, expoT0), parse(t, expoT1)
	out := render(prev, cur, 10*time.Second, 20)
	for _, want := range []string{
		"color 150 (5.0/s)",
		"template_cost 10 (0.0/s)",
		"inflight 3  queue 2",
		"accesses      2000 (100.0/s)",
		"conflicts 25 (0.500/batch)",
		"max 1200 @ module 0",
		"ratio 1.200",
		"acquire hits 70  disk hits 20  materializes 10",
		"disk tier     entries 4 (3.0 MiB)  spills 6  corrupt 0  tier hit ratio 0.900",
		"checks 10  skipped 1  violations 0  [ok]",
		"controller    decisions 12 (1.2/s)  migrations 1  shadow evals 36",
		"levelcyclic/H=12/M=15    dwell 42s  migrations 1",
		"slo watchdog  breaches 3 (0.3/s)  recoveries 3  snapshots 1 (rate-limited 2)  events 140  [ok]",
		"rule error_rate",
		"S  observations 8  mean 0.500  max bucket le=1",
		"m0         1200 (60.0/s) " + strings.Repeat("#", 20),
		"m2          800 (40.0/s) " + strings.Repeat("#", 13),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATION") {
		t.Error("zero violations must render [ok]")
	}
}

// TestRenderViolationFlag checks the alarm path.
func TestRenderViolationFlag(t *testing.T) {
	sc := parse(t, "pmsd_bound_violations_total 3\n")
	out := render(nil, sc, 0, 10)
	if !strings.Contains(out, "[VIOLATION]") {
		t.Errorf("violations > 0 must render [VIOLATION]:\n%s", out)
	}
}

// TestRenderEmptyScrape: a scrape with no domain series still renders.
func TestRenderEmptyScrape(t *testing.T) {
	out := render(nil, parse(t, ""), 0, 10)
	if !strings.Contains(out, "no accesses recorded yet") {
		t.Errorf("empty scrape frame:\n%s", out)
	}
}

// TestRenderNoStore: a pmsd without -store-dir exports no pmsd_store_*
// series, and the disk-tier line must stay out of the frame.
func TestRenderNoStore(t *testing.T) {
	out := render(nil, parse(t, expoT0), 0, 10)
	if strings.Contains(out, "disk tier") {
		t.Errorf("storeless scrape must not render a disk-tier line:\n%s", out)
	}
}

// TestRenderSLOGating: scrapes predating the flight recorder carry no
// pmsd_slo_* series and must not render the watchdog line; an active
// breach (more breaches than recoveries) flags BREACHED.
func TestRenderSLOGating(t *testing.T) {
	out := render(nil, parse(t, expoT0), 0, 10)
	if strings.Contains(out, "slo watchdog") {
		t.Errorf("pre-forensics scrape must not render an slo line:\n%s", out)
	}
	sc := parse(t, "pmsd_slo_breaches_total 2\npmsd_slo_recoveries_total 1\n")
	out = render(nil, sc, 0, 10)
	if !strings.Contains(out, "[BREACHED]") {
		t.Errorf("active breach must render [BREACHED]:\n%s", out)
	}
}
