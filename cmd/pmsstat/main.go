// Command pmsstat is a top-style terminal monitor for a running pmsd: it
// polls GET /metrics, parses the Prometheus exposition with the same
// parser the tests pin the wire format with, and renders the domain
// observability surface — a per-module load heatmap, template-family
// conflict rates, the load-balance ratio and the theorem-bound monitor —
// plus serving-side request rates.
//
//	pmsstat -addr 127.0.0.1:8080 -interval 2s
//	pmsstat -addr 127.0.0.1:8080 -once        # one snapshot, no screen control
//
// Rates (req/s, accesses/s) need two polls; the first frame shows
// cumulative values only.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "pmsd address (host:port or full URL)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	barWidth := flag.Int("bar-width", 40, "width of the module heatmap bars")
	flag.Parse()
	if *interval <= 0 {
		fmt.Fprintln(os.Stderr, "-interval must be positive")
		os.Exit(2)
	}
	if *barWidth < 1 {
		fmt.Fprintln(os.Stderr, "-bar-width must be at least 1")
		os.Exit(2)
	}

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	url := strings.TrimSuffix(base, "/") + "/metrics"
	client := &http.Client{Timeout: 5 * time.Second}

	var prev *metrics.Scrape
	var prevAt time.Time
	for {
		sc, err := scrape(client, url)
		if err != nil {
			log.Fatalf("scrape %s: %v", url, err)
		}
		now := time.Now()
		frame := render(prev, sc, now.Sub(prevAt), *barWidth)
		if *once {
			fmt.Print(frame)
			return
		}
		// Home + clear-to-end keeps the frame flicker-free in most terminals.
		fmt.Print("\033[H\033[2J" + frame)
		prev, prevAt = sc, now
		time.Sleep(*interval)
	}
}

func scrape(client *http.Client, url string) (*metrics.Scrape, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return metrics.ParseExposition(string(body))
}

// val reads a series value, 0 when absent.
func val(sc *metrics.Scrape, name string, labels ...metrics.Label) float64 {
	v, _ := sc.Value(name, labels...)
	return v
}

// rate formats the per-second delta of a counter between two scrapes,
// or "-" when no previous scrape exists.
func rate(prev, cur *metrics.Scrape, elapsed time.Duration, name string, labels ...metrics.Label) string {
	if prev == nil || elapsed <= 0 {
		return "-"
	}
	d := val(cur, name, labels...) - val(prev, name, labels...)
	if d < 0 { // server restarted between polls
		return "-"
	}
	return fmt.Sprintf("%.1f/s", d/elapsed.Seconds())
}

// moduleLoads extracts the per-module access counters, sorted by module.
type moduleLoad struct {
	Module int
	Count  float64
}

func moduleLoads(sc *metrics.Scrape) []moduleLoad {
	var out []moduleLoad
	for _, s := range sc.Series("pmsd_module_accesses_total") {
		mod, err := strconv.Atoi(s.Label("module"))
		if err != nil {
			continue
		}
		out = append(out, moduleLoad{Module: mod, Count: s.Value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Module < out[j].Module })
	return out
}

// render builds one full frame from the current scrape (and the previous
// one, for rates). Pure — no clocks, no I/O — so tests pin it exactly.
func render(prev, cur *metrics.Scrape, elapsed time.Duration, barWidth int) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("pmsd /metrics\n\n")

	// Serving side: per-endpoint request totals and rates.
	w("requests      ")
	for _, ep := range []string{"color", "template_cost", "simulate"} {
		lbl := metrics.Label{Name: "endpoint", Value: ep}
		w("%s %.0f (%s)  ", ep, val(cur, "pmsd_endpoint_requests_total", lbl),
			rate(prev, cur, elapsed, "pmsd_endpoint_requests_total", lbl))
	}
	w("\n")
	w("backpressure  inflight %.0f  queue %.0f  rejected_429 %.0f\n",
		val(cur, "pmsd_inflight"), val(cur, "pmsd_queue_depth"), val(cur, "pmsd_rejected_429_total"))
	memHits := val(cur, "pmsd_registry_acquire_hits_total")
	diskHits := val(cur, "pmsd_registry_acquire_disk_hits_total")
	materializes := val(cur, "pmsd_registry_acquire_materializes_total")
	w("registry      acquire hits %.0f  disk hits %.0f  materializes %.0f  bytes %.0f\n",
		memHits, diskHits, materializes, val(cur, "pmsd_registry_bytes"))
	// pmsd exports the pmsd_store_* series unconditionally (zeros when
	// memory-only), so this line normally always renders; gating on the
	// series keeps pmsstat graceful against scrapes that predate the
	// disk tier.
	if entries, ok := cur.Value("pmsd_store_entries"); ok {
		ratio := "-"
		if total := memHits + diskHits + materializes; total > 0 {
			ratio = fmt.Sprintf("%.3f", (memHits+diskHits)/total)
		}
		w("disk tier     entries %.0f (%.1f MiB)  spills %.0f  corrupt %.0f  tier hit ratio %s\n",
			entries, val(cur, "pmsd_store_bytes")/(1<<20),
			val(cur, "pmsd_store_spills_total"), val(cur, "pmsd_store_corrupt_total"), ratio)
	}
	w("\n")

	// Domain: accesses, conflicts and the load-balance gauges.
	batches := val(cur, "pmsd_batches_total")
	conflicts := val(cur, "pmsd_conflicts_total")
	perBatch := 0.0
	if batches > 0 {
		perBatch = conflicts / batches
	}
	w("accesses      %.0f (%s)  batches %.0f  conflicts %.0f (%.3f/batch)\n",
		val(cur, "pmsd_accesses_total"), rate(prev, cur, elapsed, "pmsd_accesses_total"),
		batches, conflicts, perBatch)
	w("load balance  active %.0f modules  max %.0f @ module %.0f  mean %.2f  ratio %.3f\n",
		val(cur, "pmsd_module_active"), val(cur, "pmsd_module_load_max"),
		val(cur, "pmsd_module_hottest"), val(cur, "pmsd_module_load_mean"),
		val(cur, "pmsd_module_load_ratio"))

	violations := val(cur, "pmsd_bound_violations_total")
	status := "ok"
	if violations > 0 {
		status = "VIOLATION"
	}
	w("bound monitor checks %.0f  skipped %.0f  violations %.0f  [%s]\n",
		val(cur, "pmsd_bound_checks_total"), val(cur, "pmsd_bound_checks_skipped_total"),
		violations, status)

	// Adaptive mapping controller: decision/migration counters plus one
	// dwell row per policy-managed spec. Gated on the series so scrapes
	// from a pmsd predating the controller render unchanged.
	if decisions, ok := cur.Value("pmsd_controller_decisions_total"); ok {
		w("controller    decisions %.0f (%s)  migrations %.0f  shadow evals %.0f\n",
			decisions, rate(prev, cur, elapsed, "pmsd_controller_decisions_total"),
			val(cur, "pmsd_controller_migrations_total"),
			val(cur, "pmsd_controller_shadow_evals_total"))
		for _, s := range cur.Series("pmsd_controller_dwell_seconds") {
			spec := s.Label("spec")
			w("  %-24s dwell %.0fs  migrations %.0f\n", spec, s.Value,
				val(cur, "pmsd_controller_migrations", metrics.Label{Name: "spec", Value: spec}))
		}
	}

	// SLO watchdog / flight recorder: gated on the series so scrapes
	// from a pmsd predating the forensics layer render unchanged.
	if breaches, ok := cur.Value("pmsd_slo_breaches_total"); ok {
		status := "ok"
		if breaches > val(cur, "pmsd_slo_recoveries_total") {
			status = "BREACHED"
		}
		w("slo watchdog  breaches %.0f (%s)  recoveries %.0f  snapshots %.0f (rate-limited %.0f)  events %.0f  [%s]\n",
			breaches, rate(prev, cur, elapsed, "pmsd_slo_breaches_total"),
			val(cur, "pmsd_slo_recoveries_total"),
			val(cur, "pmsd_flightrec_snapshots_total"),
			val(cur, "pmsd_flightrec_snapshots_rate_limited_total"),
			val(cur, "pmsd_flightrec_events_total"), status)
		for _, s := range cur.Series("pmsd_slo_rule_breaches_total") {
			w("  rule %-18s breaches %.0f\n", s.Label("rule"), s.Value)
		}
	}
	w("\n")

	// Template-family conflict rates from the cumulative histograms.
	if fams := familyRows(cur); len(fams) > 0 {
		w("family conflicts\n")
		for _, f := range fams {
			w("  %-2s observations %.0f  mean %.3f  max bucket le=%s\n", f.name, f.count, f.mean, f.maxLE)
		}
		w("\n")
	}

	// Per-module heatmap, bars scaled to the hottest module.
	loads := moduleLoads(cur)
	if len(loads) > 0 {
		maxC := loads[0].Count
		for _, l := range loads {
			if l.Count > maxC {
				maxC = l.Count
			}
		}
		w("module heatmap (%d modules)\n", len(loads))
		for _, l := range loads {
			n := 0
			if maxC > 0 {
				n = int(l.Count / maxC * float64(barWidth))
			}
			w("  m%-3d %10.0f (%s) %s\n", l.Module, l.Count,
				rate(prev, cur, elapsed, "pmsd_module_accesses_total",
					metrics.Label{Name: "module", Value: strconv.Itoa(l.Module)}),
				strings.Repeat("#", n))
		}
	} else {
		w("module heatmap: no accesses recorded yet\n")
	}
	return b.String()
}

type familyRow struct {
	name  string
	count float64
	mean  float64
	maxLE string
}

// familyRows summarizes each family's conflict histogram: observation
// count, mean conflicts, and the highest non-empty bucket bound.
func familyRows(sc *metrics.Scrape) []familyRow {
	var rows []familyRow
	for _, fam := range metrics.Families {
		lbl := metrics.Label{Name: "family", Value: fam}
		count, ok := sc.Value("pmsd_template_conflicts_count", lbl)
		if !ok || count == 0 {
			continue
		}
		sum := val(sc, "pmsd_template_conflicts_sum", lbl)
		row := familyRow{name: fam, count: count, mean: sum / count}
		// The exposition orders buckets ascending; the last finite one
		// before +Inf is the highest observed magnitude.
		for _, s := range sc.Series("pmsd_template_conflicts_bucket") {
			if s.Label("family") == fam && s.Label("le") != "+Inf" {
				row.maxLE = s.Label("le")
			}
		}
		rows = append(rows, row)
	}
	return rows
}
