package repro

// Benchmark snapshotting for the perf trajectory across PRs: running
//
//	BENCH_SNAPSHOT=BENCH_pr1.json go test -run TestBenchSnapshot .
//
// (or `make bench-snapshot`) measures the simulator hot paths with
// testing.Benchmark and writes one JSON object per kernel, so successive
// PRs can diff ns/op and allocs/op without parsing `go test -bench`
// output. The test is a no-op unless BENCH_SNAPSHOT names the output file.

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"repro/internal/baseline"
	"repro/internal/pms"
	"repro/internal/scheduler"
	"repro/internal/trace"
	"repro/internal/tree"
)

// snapshotEntry is one benchmark measurement in the JSON snapshot.
type snapshotEntry struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	MBPerSec    float64 `json:"-"`
}

func snapshotTrace(levels, batches int, seed int64) trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	r := trace.NewRecorder(levels)
	nodes := tree.New(levels).Nodes()
	for b := 0; b < batches; b++ {
		batch := make([]tree.Node, rng.Intn(10))
		for i := range batch {
			batch[i] = tree.FromHeapIndex(rng.Int63n(nodes))
		}
		r.Record(batch)
	}
	return r.Trace()
}

func snapshotSchedulerQueues(b *testing.B) [][]scheduler.Access {
	rng := rand.New(rand.NewSource(46))
	var stream []scheduler.Access
	for i := 0; i < 200; i++ {
		j := 6 + rng.Intn(5)
		n := tree.V(rng.Int63n(tree.New(12).LevelWidth(j)), j)
		stream = append(stream, scheduler.Access{Nodes: tree.PathNodes(n, 6)})
	}
	queues, err := scheduler.SplitRoundRobin(stream, 4)
	if err != nil {
		b.Fatal(err)
	}
	return queues
}

// TestBenchSnapshot writes the hot-path benchmark snapshot named by the
// BENCH_SNAPSHOT environment variable; without it the test skips.
func TestBenchSnapshot(t *testing.T) {
	out := os.Getenv("BENCH_SNAPSHOT")
	if out == "" {
		t.Skip("set BENCH_SNAPSHOT=<path> to write a benchmark snapshot")
	}
	mapping := baseline.Modulo(tree.New(14), 7)
	tr := snapshotTrace(14, 2000, 77)
	kernels := map[string]func(*testing.B){
		"ReplaySequential": func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.Replay(mapping, tr); err != nil {
					b.Fatal(err)
				}
			}
		},
		"ReplayParallel": func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := trace.ReplayParallel(mapping, tr, 0); err != nil {
					b.Fatal(err)
				}
			}
		},
		"SchedulerRun": func(b *testing.B) {
			queues := snapshotSchedulerQueues(b)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := scheduler.Run(mapping, queues); err != nil {
					b.Fatal(err)
				}
			}
		},
		"SchedulerRunReference": func(b *testing.B) {
			queues := snapshotSchedulerQueues(b)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := scheduler.RunReference(mapping, queues); err != nil {
					b.Fatal(err)
				}
			}
		},
		"SubmitDrain": func(b *testing.B) {
			sys := pms.NewSystem(mapping)
			batch := tree.PathNodes(tree.V(1000, 11), 10)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sys.SubmitDrain(batch)
			}
		},
	}
	snapshot := make(map[string]snapshotEntry, len(kernels))
	for name, fn := range kernels {
		r := testing.Benchmark(fn)
		snapshot[name] = snapshotEntry{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
	}
	data, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("benchmark snapshot written to %s", out)
}
