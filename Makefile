# Build/verification tiers for the tree-access reproduction.
#
#   make check          vet + race tests + benchmark smoke + server smoke (CI tier)
#   make test           plain unit tests (tier-1)
#   make bench          full benchmark sweep with allocation counts
#   make bench-snapshot rewrite BENCH_pr1.json from the hot-path kernels
#   make server-smoke   boot pmsd, scripted request mix incl. backpressure
#   make bench-serving  rewrite BENCH_pr2.json from a pmsd -loadgen run
#   make fuzz-smoke     run every Fuzz* target briefly (FUZZTIME=10s)
#   make bench-chaos    rewrite BENCH_pr3.json from a pmsd -chaos-bench run
#   make bench-obs      rewrite BENCH_pr4.json from a pmsd -trace-bench run
#   make bench-metrics  rewrite BENCH_pr5.json from a pmsd -metrics-bench run
#   make bench-retrieval rewrite BENCH_pr6.json from a pmsd -retrieval-bench run
#   make bench-store    rewrite BENCH_pr7.json from a pmsd -store-bench run
#   make bench-replay   rewrite BENCH_pr8.json from a pmsd -replay-bench run
#   make bench-controller rewrite BENCH_pr9.json from a pmsd -controller-bench run
#   make bench-forensics rewrite BENCH_pr10.json from a pmsd -forensics-bench run

GO ?= go

.PHONY: check vet test race bench-smoke bench bench-snapshot server-smoke bench-serving fuzz-smoke bench-chaos bench-obs bench-metrics bench-retrieval bench-store bench-replay bench-controller bench-forensics

check: vet race bench-smoke server-smoke fuzz-smoke bench-replay bench-controller bench-forensics

vet:
	$(GO) vet ./...

# Tier-1 runs vet too: it is cheap and catches printf/struct-tag slips
# that plain `go test` lets through.
test: vet
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or fail their internal assertions, without the full measurement.
bench-smoke:
	$(GO) test -run=- -bench=. -benchtime=1x ./...

bench:
	$(GO) test -bench=. -benchmem ./...

bench-snapshot:
	BENCH_SNAPSHOT=$(CURDIR)/BENCH_pr1.json $(GO) test -run TestBenchSnapshot .

# Boots pmsd on a random port and runs the scripted serving smoke:
# request mix, batch coalescing visible in /debug/vars, 429 backpressure
# under saturation, graceful SIGTERM drain.
server-smoke:
	./scripts/server_smoke.sh

# End-to-end serving throughput snapshot: the same workload with
# coalescing on vs batch size 1, written to BENCH_pr2.json.
bench-serving:
	$(GO) run ./cmd/pmsd -loadgen -requests 20000 -clients 32 -dist zipf \
	    -bench-out $(CURDIR)/BENCH_pr2.json

# Short fuzzing pass over every Fuzz* target in the module; crashers
# fail the build. Budget per target via FUZZTIME (default 10s).
fuzz-smoke:
	FUZZTIME=$(FUZZTIME) ./scripts/fuzz_smoke.sh

# Tail-latency under injected faults: the resilient client driving a
# chaotic in-process server, hedging off vs on under the identical
# seeded fault schedule, written to BENCH_pr3.json.
bench-chaos:
	$(GO) run ./cmd/pmsd -chaos-bench -requests 8000 -clients 16 \
	    -chaos-seed 42 -chaos-latency 0.1 -levels 16 \
	    -bench-out $(CURDIR)/BENCH_pr3.json

# Request-tracing overhead snapshot: the identical loadgen workload with
# tracing off, sampled at 0.01, and at full sampling, written to
# BENCH_pr4.json. The claim under test: <3% p50 cost at full sampling.
bench-obs:
	$(GO) run ./cmd/pmsd -trace-bench -requests 12000 -clients 32 -dist zipf \
	    -bench-out $(CURDIR)/BENCH_pr4.json

# Domain-accounting overhead snapshot: the identical template-cost
# workload with per-module accounting off vs on, written to
# BENCH_pr5.json. The claim under test: <3% p50 cost with accounting on,
# and zero theorem-bound violations across the accounted run.
bench-metrics:
	$(GO) run ./cmd/pmsd -metrics-bench -requests 12000 -clients 32 -dist zipf \
	    -bench-out $(CURDIR)/BENCH_pr5.json

# Batch-kernel throughput snapshot: every mapping's ColorBatch kernel
# against the per-node interface path at batch 64/256/1024, plus an
# end-to-end serving A/B with the kernel disabled. The claim under test:
# >=5x kernel speedup at batch >=64 on at least two mapping algorithms.
bench-retrieval:
	$(GO) run ./cmd/pmsd -retrieval-bench -levels 20 \
	    -bench-out $(CURDIR)/BENCH_pr6.json

# Disk-tier snapshot: cold materialization vs warm mmap acquire per spec
# (min-of-reps, headlined by the largest COLOR retriever table) plus the
# tier hit ratio under a Zipf spec mix through a tiny memory tier. The
# claim under test: >=5x faster warm acquire for the large-H spec.
bench-store:
	$(GO) run ./cmd/pmsd -store-bench -bench-out $(CURDIR)/BENCH_pr7.json

# Record/replay determinism snapshot: a Zipf-skewed multi-tenant mixed
# workload (color / template-cost / range / heap endpoints) is recorded
# through the trace middleware, then replayed twice against fresh
# deterministic servers. The claims under test: bit-identical response
# digests across the two replays, and zero theorem-bound violations.
bench-replay:
	$(GO) run ./cmd/pmsd -replay-bench -requests 4000 -clients 16 -tenants 8 \
	    -levels 14 -bench-out $(CURDIR)/BENCH_pr8.json

# Adaptive-controller snapshot: the S-heavy → P-heavy phase-shift
# workload against the controller and against each static mapping it
# arbitrates between. The claims under test: the controller migrates to
# COLOR during the S phase, its observed conflicts undercut every static
# choice at comparable p99, and the bound monitor stays at zero.
bench-controller:
	$(GO) run ./cmd/pmsd -controller-bench -requests 2400 -clients 8 \
	    -levels 12 -bench-out $(CURDIR)/BENCH_pr9.json

# Flight-recorder overhead snapshot: the identical mixed workload with
# the recorder off vs on (rings + watchdog ticking), written to
# BENCH_pr10.json. Clients match the worker count so the comparison runs
# below saturation: at saturation p50 measures queue depth and amplifies
# scheduler noise past the effect being priced. The claims under test:
# <3% p50 serving cost with the recorder on, and zero theorem-bound
# violations across both runs.
bench-forensics:
	$(GO) run ./cmd/pmsd -forensics-bench -requests 12000 -clients 4 -dist zipf \
	    -bench-out $(CURDIR)/BENCH_pr10.json
