# Build/verification tiers for the tree-access reproduction.
#
#   make check          vet + race tests + benchmark smoke pass (CI tier)
#   make test           plain unit tests (tier-1)
#   make bench          full benchmark sweep with allocation counts
#   make bench-snapshot rewrite BENCH_pr1.json from the hot-path kernels

GO ?= go

.PHONY: check vet test race bench-smoke bench bench-snapshot

check: vet race bench-smoke

vet:
	$(GO) vet ./...

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches benchmarks that no longer
# compile or fail their internal assertions, without the full measurement.
bench-smoke:
	$(GO) test -run=- -bench=. -benchtime=1x ./...

bench:
	$(GO) test -bench=. -benchmem ./...

bench-snapshot:
	BENCH_SNAPSHOT=$(CURDIR)/BENCH_pr1.json $(GO) test -run TestBenchSnapshot .
