// Package repro reproduces "Optimal Tree Access by Elementary and
// Composite Templates in Parallel Memory Systems" (Auletta, Das, De Vivo,
// Pinotti, Scarano; IPDPS 2001 / IEEE TPDS): algorithms for mapping
// complete binary trees onto parallel memory systems so that subtree,
// path, level and composite templates are accessed with few or no memory
// conflicts.
//
// The library lives under internal/ (see internal/core for the facade),
// runnable examples under examples/, command-line tools under cmd/, and
// the per-theorem benchmark harness in bench_test.go. internal/server and
// cmd/pmsd expose the mappings and simulator as a concurrent HTTP/JSON
// service with request coalescing and backpressure; internal/metrics
// adds the domain observability layer (per-module access accounting,
// template-family conflict histograms, a live monitor of the paper's
// theorem bounds) rendered at GET /metrics in Prometheus text format
// and watched by cmd/pmsstat. Batched color retrieval in the serving
// hot path runs through per-mapping kernels (coloring.BatchColorer,
// dispatched by coloring.ColorBatch; see README "Raw-speed retrieval"
// and EXPERIMENTS.md E21). internal/mapstore is the disk tier under the
// serving registry — checksummed block-aligned mapping artifacts,
// mmap'd warm starts, crash-safe spills (pmsd -store-dir; see README
// "Tiered storage" and EXPERIMENTS.md E22). The workload scenario layer
// serves the paper's applications end to end — /v1/heap/* and /v1/range
// with per-tenant admission — and internal/replay records live traffic
// into checksummed PMSTRC1 traces that replay deterministically
// (pmsd -record / -replay / -replay-bench; see README "Workloads" and
// EXPERIMENTS.md E23). internal/controller is the adaptive mapping
// policy loop over the paper's central trade-off: it classifies each
// registry entry's live template mix, shadow-scores candidate mappings
// on sampled traffic, and migrates entries under hysteresis (pmsd
// -controller; see README "Adaptive mapping" and EXPERIMENTS.md E24).
// internal/flightrec is the forensics layer: an always-on black-box
// recorder (bounded event/frame/decision rings) with an SLO watchdog
// whose rules include the theorem-bound monitor as a must-be-zero
// invariant; breaches freeze checksummed PMSINC1 incident snapshots
// bundling a replayable worst-window trace, decoded and re-driven
// offline by cmd/pmsdoctor (pmsd -flightrec-dir / -slo-*,
// GET /debug/snapshot; see README "Forensics" and EXPERIMENTS.md E25).
// DESIGN.md maps every paper result to the
// module and experiment that reproduces it; EXPERIMENTS.md records
// claimed-versus-measured numbers.
package repro
